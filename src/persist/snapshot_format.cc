#include "src/persist/snapshot_format.h"

#include <cstdio>
#include <cstring>

#include "src/util/crc32.h"
#include "src/util/fault_injection.h"

namespace spores {

// ---------------------------------------------------------------------------
// ByteWriter / ByteReader
// ---------------------------------------------------------------------------

void ByteWriter::PutU32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

Status ByteReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::InvalidArgument("snapshot: truncated payload");
  }
  return Status::OK();
}

Status ByteReader::GetU8(uint8_t* out) {
  SPORES_RETURN_IF_ERROR(Need(1));
  *out = static_cast<uint8_t>(bytes_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* out) {
  SPORES_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* out) {
  SPORES_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* out) {
  uint64_t v;
  SPORES_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) {
  uint64_t bits;
  SPORES_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint32_t len;
  SPORES_RETURN_IF_ERROR(GetU32(&len));
  SPORES_RETURN_IF_ERROR(Need(len));
  out->assign(bytes_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

const char* SectionIdName(SectionId id) {
  switch (id) {
    case SectionId::kCatalog:
      return "catalog";
    case SectionId::kPlanCache:
      return "plan_cache";
    case SectionId::kEGraph:
      return "egraph";
    case SectionId::kRouter:
      return "router";
    case SectionId::kCalibration:
      return "calibration";
  }
  return "unknown";
}

namespace {

// Header layout: magic, format_version, rule_set_hash, cost_model_hash,
// created_unix_seconds, shard_count, shard_index, then the CRC of everything
// before it.
std::string EncodeHeader(const SnapshotHeader& h) {
  ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(h.format_version);
  w.PutU64(h.rule_set_hash);
  w.PutU64(h.cost_model_hash);
  w.PutI64(h.created_unix_seconds);
  w.PutU32(h.shard_count);
  w.PutU32(h.shard_index);
  std::string body = w.Take();
  ByteWriter crc;
  crc.PutU32(Crc32(body));
  return body + crc.Take();
}

}  // namespace

void SnapshotFileWriter::AddSection(SectionId id, std::string payload) {
  sections_.emplace_back(id, std::move(payload));
}

std::string SnapshotFileWriter::Encode() const {
  std::string out = EncodeHeader(header_);
  for (const auto& [id, payload] : sections_) {
    ByteWriter frame;
    frame.PutU32(static_cast<uint32_t>(id));
    frame.PutU64(payload.size());
    frame.PutU32(Crc32(payload));
    out += frame.Take();
    out += payload;
  }
  return out;
}

Status SnapshotFileWriter::WriteToFile(const std::string& path) const {
  return AtomicWriteFile(path, Encode());
}

StatusOr<SnapshotFileReader> SnapshotFileReader::Open(const std::string& path) {
  SPORES_ASSIGN_OR_RETURN(std::string image, ReadFileToString(path));
  return Parse(image);
}

StatusOr<SnapshotFileReader> SnapshotFileReader::Parse(std::string_view image) {
  ByteReader r(image);
  SnapshotFileReader reader;
  SnapshotHeader& h = reader.header_;

  uint32_t magic;
  SPORES_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic");
  }
  SPORES_RETURN_IF_ERROR(r.GetU32(&h.format_version));
  SPORES_RETURN_IF_ERROR(r.GetU64(&h.rule_set_hash));
  SPORES_RETURN_IF_ERROR(r.GetU64(&h.cost_model_hash));
  SPORES_RETURN_IF_ERROR(r.GetI64(&h.created_unix_seconds));
  SPORES_RETURN_IF_ERROR(r.GetU32(&h.shard_count));
  SPORES_RETURN_IF_ERROR(r.GetU32(&h.shard_index));
  uint32_t stored_header_crc;
  SPORES_RETURN_IF_ERROR(r.GetU32(&stored_header_crc));
  // The header body is everything up to (but excluding) its CRC field.
  const size_t header_body_len = image.size() - r.remaining() - 4;
  if (Crc32(image.substr(0, header_body_len)) != stored_header_crc) {
    return Status::InvalidArgument("snapshot: header CRC mismatch");
  }

  while (!r.AtEnd()) {
    uint32_t raw_id;
    uint64_t len;
    SectionInfo info;
    SPORES_RETURN_IF_ERROR(r.GetU32(&raw_id));
    SPORES_RETURN_IF_ERROR(r.GetU64(&len));
    SPORES_RETURN_IF_ERROR(r.GetU32(&info.stored_crc));
    if (len > r.remaining()) {
      return Status::InvalidArgument("snapshot: truncated section");
    }
    info.id = static_cast<SectionId>(raw_id);
    info.payload.resize(len);
    for (size_t i = 0; i < len; ++i) {
      uint8_t b;
      SPORES_RETURN_IF_ERROR(r.GetU8(&b));
      info.payload[i] = static_cast<char>(b);
    }
    info.crc_ok = Crc32(info.payload) == info.stored_crc;
    reader.sections_.push_back(std::move(info));
  }
  return reader;
}

StatusOr<std::string_view> SnapshotFileReader::Section(SectionId id) const {
  for (const auto& s : sections_) {
    if (s.id != id) continue;
    if (!s.crc_ok) {
      return Status::InvalidArgument(std::string("snapshot: section '") +
                                     SectionIdName(id) + "' CRC mismatch");
    }
    return std::string_view(s.payload);
  }
  return Status::NotFound(std::string("snapshot: no section '") +
                          SectionIdName(id) + "'");
}

// ---------------------------------------------------------------------------
// Journal framing
// ---------------------------------------------------------------------------

std::string EncodeJournalRecord(std::string_view payload) {
  ByteWriter w;
  w.PutU32(kJournalRecordMagic);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  std::string out = w.Take();
  out.append(payload.data(), payload.size());
  return out;
}

std::vector<std::string> DecodeJournalRecords(std::string_view image) {
  std::vector<std::string> records;
  ByteReader r(image);
  while (!r.AtEnd()) {
    uint32_t magic, len, crc;
    if (!r.GetU32(&magic).ok() || magic != kJournalRecordMagic) break;
    if (!r.GetU32(&len).ok() || !r.GetU32(&crc).ok()) break;
    if (len > r.remaining()) break;  // torn tail: crash mid-append
    std::string payload(len, '\0');
    bool ok = true;
    for (uint32_t i = 0; i < len && ok; ++i) {
      uint8_t b;
      ok = r.GetU8(&b).ok();
      payload[i] = static_cast<char>(b);
    }
    if (!ok || Crc32(payload) != crc) break;
    records.push_back(std::move(payload));
  }
  return records;
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return Status::Internal("read error on " + path);
  return data;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  // Chaos site. Status-errors fire before the tmp exists; an injected torn
  // write persists only a prefix of the data (the crash-mid-write case)
  // and must still clean up the tmp — that is the contract the
  // checkpoint regression test pins. Thrown kinds are contained here:
  // this is a Status boundary, callers must never see an exception.
  bool torn = false;
  Status injected;
  try {
    injected = fault::PointStatus("snapshot_write", &torn);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("snapshot write failed: ") +
                            e.what());
  }
  if (!injected.ok()) return injected;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::Internal("cannot create " + tmp);
  const size_t to_write = torn ? data.size() / 2 : data.size();
  const size_t written = std::fwrite(data.data(), 1, to_write, f);
  const bool flush_err = std::fflush(f) != 0;
  std::fclose(f);
  if (torn || written != to_write || flush_err) {
    std::remove(tmp.c_str());
    return torn ? Status::Internal("injected torn write to " + tmp)
                : Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed for " + path);
  }
  return Status::OK();
}

}  // namespace spores
