// Versioned binary container for shard snapshots, plus WAL journal framing.
//
// A snapshot file is:
//
//   [SnapshotHeader][Section]...[Section]
//
// The header carries the format version and two invalidation hashes (rule set,
// cost-model params): a reader that sees any mismatch refuses the whole file —
// plans extracted under different rules or costs must never be served. Each
// section is independently CRC32-framed so the inspect tool can tell *which*
// part of a corrupt file rotted, and so a reader can fail before decoding a
// single byte of damaged payload.
//
// A journal file is a flat sequence of CRC-framed records appended between
// full checkpoints. A torn final record (crash mid-append) is a normal stop
// point for replay, not an error; anything after the first bad frame is
// ignored.
//
// All integers are little-endian fixed width. No compression, no alignment
// tricks: the distributed tier will reuse this framing on the wire, and
// debuggability beats density at this scale (caches are a few MB).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace spores {

// ---------------------------------------------------------------------------
// Primitive byte-buffer encode/decode.
// ---------------------------------------------------------------------------

/// Appends little-endian primitives to a growable byte buffer.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t len);

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Cursor over an immutable byte span; every read is bounds-checked and
/// returns a Status instead of trusting the input (snapshots are untrusted
/// bytes off disk).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);
  Status GetString(std::string* out);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Need(size_t n);
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Snapshot container.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kSnapshotMagic = 0x53505153u;  // "SQPS"
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Section ids. Values are part of the on-disk format; append only.
enum class SectionId : uint32_t {
  kCatalog = 1,      // matrix metadata + attr dims for everything referenced
  kPlanCache = 2,    // plan-cache entries, LRU-oldest first
  kEGraph = 3,       // dense root-scoped e-graph image
  kRouter = 4,       // fingerprint-hash → shard affinity pins
  kCalibration = 5,  // learned cost-calibration table (PR 10)
};

const char* SectionIdName(SectionId id);

struct SnapshotHeader {
  uint32_t format_version = kSnapshotFormatVersion;
  uint64_t rule_set_hash = 0;
  uint64_t cost_model_hash = 0;
  int64_t created_unix_seconds = 0;
  uint32_t shard_count = 0;
  uint32_t shard_index = 0;
};

/// Accumulates sections in memory, then writes the whole snapshot atomically
/// (tmp file + rename) so readers never observe a half-written snapshot.
class SnapshotFileWriter {
 public:
  explicit SnapshotFileWriter(SnapshotHeader header) : header_(header) {}

  void AddSection(SectionId id, std::string payload);

  /// Serializes header + sections to `<path>.tmp` and renames over `path`.
  Status WriteToFile(const std::string& path) const;

  /// The full encoded file image (header + sections); used by tests to
  /// corrupt specific bytes without going through the filesystem twice.
  std::string Encode() const;

 private:
  SnapshotHeader header_;
  std::vector<std::pair<SectionId, std::string>> sections_;
};

/// Parses a snapshot file. Header CRC and structural framing are validated in
/// Open(); per-section payload CRCs are validated lazily so the inspect tool
/// can report each section's health individually.
class SnapshotFileReader {
 public:
  struct SectionInfo {
    SectionId id;
    std::string payload;
    uint32_t stored_crc = 0;
    bool crc_ok = false;
  };

  /// Reads and structurally validates `path`. Returns InvalidArgument for any
  /// framing/CRC problem, NotFound if the file does not exist.
  static StatusOr<SnapshotFileReader> Open(const std::string& path);

  /// Same, from an in-memory image (tests, inspect of piped data).
  static StatusOr<SnapshotFileReader> Parse(std::string_view image);

  const SnapshotHeader& header() const { return header_; }
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Payload of the first section with `id` iff its CRC checks out.
  /// InvalidArgument on CRC mismatch, NotFound if absent.
  StatusOr<std::string_view> Section(SectionId id) const;

 private:
  SnapshotHeader header_;
  std::vector<SectionInfo> sections_;
};

// ---------------------------------------------------------------------------
// Journal framing.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kJournalRecordMagic = 0x4a525350u;  // "PSRJ"

/// Frames `payload` as one journal record (magic + length + CRC + bytes).
std::string EncodeJournalRecord(std::string_view payload);

/// Splits a journal file image into intact record payloads. Stops silently at
/// the first torn/corrupt frame — everything before it is trustworthy, the
/// tail is the crash artifact WAL replay is designed to tolerate.
std::vector<std::string> DecodeJournalRecords(std::string_view image);

// ---------------------------------------------------------------------------
// Small file helpers shared by checkpoint/restore/inspect.
// ---------------------------------------------------------------------------

/// Reads an entire file. NotFound if it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `<path>.tmp` then renames onto `path` (atomic on POSIX).
Status AtomicWriteFile(const std::string& path, std::string_view data);

}  // namespace spores
