// Process-independent codecs for the optimizer's plan-store payloads: Expr
// DAGs, catalogs, canonical polyterms, optimized plans, and e-graph images.
//
// Two cross-process hazards shape every codec here:
//
//  1. Symbol intern ids are process-local, so symbols travel as strings and
//     are re-interned on decode.
//  2. Several invariants are phrased in terms of the *current* process's
//     intern order (kAgg attribute lists and Monomial::bound are sorted by
//     Symbol id; monomial atoms by structural hash). Decoders re-establish
//     them — DecodePolyterm re-Normalize()s each monomial, DecodeExpr
//     re-sorts kAgg attrs — rather than trusting the writer's order.
//
// Everything decodes defensively (bounds-checked, Status on malformed
// input): snapshot payloads are untrusted bytes off disk even after their
// section CRC passes, since a CRC protects against rot, not against writer
// bugs or version drift.
//
// This is the wire format the distributed shared-nothing tier will reuse;
// keep it free of any in-memory pointer or id.
#pragma once

#include "src/canon/canonical.h"
#include "src/egraph/egraph_image.h"
#include "src/ir/expr.h"
#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/plan_cache.h"
#include "src/persist/snapshot_format.h"

namespace spores {

/// Expr trees encode as a postorder node table (children reference earlier
/// entries by index), so shared subtrees serialize once and decode without
/// recursion. The root is the last entry.
void EncodeExpr(const ExprPtr& expr, ByteWriter& w);
StatusOr<ExprPtr> DecodeExpr(ByteReader& r);

/// Catalog entries, sorted by name for deterministic bytes.
void EncodeCatalog(const Catalog& catalog, ByteWriter& w);
Status DecodeCatalog(ByteReader& r, Catalog* out);

void EncodePolyterm(const Polyterm& p, ByteWriter& w);
StatusOr<Polyterm> DecodePolyterm(ByteReader& r);

void EncodePlanCacheKey(const PlanCacheKey& key, ByteWriter& w);
StatusOr<PlanCacheKey> DecodePlanCacheKey(ByteReader& r);

/// Persists the servable core of an OptimizedPlan: the plan, its costs,
/// optimality, and the extraction alternatives (provenance). Per-query
/// transients (timings, saturation report, fallback/degrade flags) are
/// deliberately dropped — degraded plans are never persisted at all, per the
/// plan cache's never-cache-degraded rule.
void EncodeOptimizedPlan(const OptimizedPlan& plan, ByteWriter& w);
StatusOr<OptimizedPlan> DecodeOptimizedPlan(ByteReader& r);

void EncodeEGraphImage(const EGraphImage& image, ByteWriter& w);
StatusOr<EGraphImage> DecodeEGraphImage(ByteReader& r);

}  // namespace spores
