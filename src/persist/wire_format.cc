#include "src/persist/wire_format.h"

#include <algorithm>
#include <unordered_map>

namespace spores {

namespace {

// Upper bound on decoded element counts, derived from what the remaining
// bytes could possibly hold (every element costs >= 1 byte). Rejecting
// counts beyond it keeps a corrupt length field from turning into a
// multi-gigabyte resize.
Status CheckCount(uint32_t count, size_t remaining, const char* what) {
  if (count > remaining) {
    return Status::InvalidArgument(std::string("snapshot: implausible ") +
                                   what + " count");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

void EncodeExpr(const ExprPtr& expr, ByteWriter& w) {
  // Postorder flatten; shared nodes (the tree is a DAG through ExprPtr)
  // appear once.
  std::vector<const Expr*> order;
  std::unordered_map<const Expr*, uint32_t> index;
  std::vector<std::pair<const Expr*, size_t>> stack;  // node, next child
  stack.emplace_back(expr.get(), 0);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (index.count(node)) {
      stack.pop_back();
      continue;
    }
    if (next < node->children.size()) {
      const Expr* child = node->children[next++].get();
      if (!index.count(child)) stack.emplace_back(child, 0);
      continue;
    }
    index.emplace(node, static_cast<uint32_t>(order.size()));
    order.push_back(node);
    stack.pop_back();
  }

  w.PutU32(static_cast<uint32_t>(order.size()));
  for (const Expr* node : order) {
    w.PutU8(static_cast<uint8_t>(node->op));
    w.PutString(node->sym.str());
    w.PutDouble(node->value);
    w.PutU32(static_cast<uint32_t>(node->attrs.size()));
    for (Symbol a : node->attrs) w.PutString(a.str());
    w.PutU32(static_cast<uint32_t>(node->children.size()));
    for (const ExprPtr& c : node->children) w.PutU32(index.at(c.get()));
  }
}

StatusOr<ExprPtr> DecodeExpr(ByteReader& r) {
  uint32_t count;
  SPORES_RETURN_IF_ERROR(r.GetU32(&count));
  SPORES_RETURN_IF_ERROR(CheckCount(count, r.remaining(), "expr node"));
  if (count == 0) return Status::InvalidArgument("snapshot: empty expr");

  std::vector<ExprPtr> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t raw_op;
    std::string sym;
    double value;
    SPORES_RETURN_IF_ERROR(r.GetU8(&raw_op));
    SPORES_RETURN_IF_ERROR(r.GetString(&sym));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&value));
    if (raw_op > static_cast<uint8_t>(Op::kUnbind)) {
      return Status::InvalidArgument("snapshot: unknown expr op");
    }
    const Op op = static_cast<Op>(raw_op);

    uint32_t nattrs;
    SPORES_RETURN_IF_ERROR(r.GetU32(&nattrs));
    SPORES_RETURN_IF_ERROR(CheckCount(nattrs, r.remaining(), "expr attr"));
    std::vector<Symbol> attrs;
    attrs.reserve(nattrs);
    for (uint32_t a = 0; a < nattrs; ++a) {
      std::string name;
      SPORES_RETURN_IF_ERROR(r.GetString(&name));
      attrs.push_back(Symbol::Intern(name));
    }
    // kAgg attr lists are sorted by Symbol id — the writer's order encodes
    // the *writer's* intern order, so re-sort under ours. kBind/kUnbind
    // attrs are ordered schemas and pass through verbatim.
    if (op == Op::kAgg) std::sort(attrs.begin(), attrs.end());

    uint32_t nchildren;
    SPORES_RETURN_IF_ERROR(r.GetU32(&nchildren));
    SPORES_RETURN_IF_ERROR(CheckCount(nchildren, r.remaining(), "expr child"));
    std::vector<ExprPtr> children;
    children.reserve(nchildren);
    for (uint32_t c = 0; c < nchildren; ++c) {
      uint32_t child_idx;
      SPORES_RETURN_IF_ERROR(r.GetU32(&child_idx));
      if (child_idx >= nodes.size()) {
        // Postorder guarantees children precede parents; anything else is
        // corruption (and would be a cycle).
        return Status::InvalidArgument("snapshot: forward expr child ref");
      }
      children.push_back(nodes[child_idx]);
    }
    nodes.push_back(Expr::Make(op, Symbol::Intern(sym), value,
                               std::move(attrs), std::move(children)));
  }
  return nodes.back();
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

void EncodeCatalog(const Catalog& catalog, ByteWriter& w) {
  std::vector<std::pair<std::string, MatrixMeta>> entries;
  entries.reserve(catalog.entries().size());
  for (const auto& [sym, meta] : catalog.entries()) {
    entries.emplace_back(sym.str(), meta);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, meta] : entries) {
    w.PutString(name);
    w.PutI64(meta.shape.rows);
    w.PutI64(meta.shape.cols);
    w.PutDouble(meta.sparsity);
  }
}

Status DecodeCatalog(ByteReader& r, Catalog* out) {
  uint32_t count;
  SPORES_RETURN_IF_ERROR(r.GetU32(&count));
  SPORES_RETURN_IF_ERROR(CheckCount(count, r.remaining(), "catalog entry"));
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    int64_t rows, cols;
    double sparsity;
    SPORES_RETURN_IF_ERROR(r.GetString(&name));
    SPORES_RETURN_IF_ERROR(r.GetI64(&rows));
    SPORES_RETURN_IF_ERROR(r.GetI64(&cols));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&sparsity));
    if (rows <= 0 || cols <= 0 || sparsity < 0.0 || sparsity > 1.0) {
      return Status::InvalidArgument("snapshot: bad catalog entry");
    }
    out->Register(name, rows, cols, sparsity);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Polyterm
// ---------------------------------------------------------------------------

void EncodePolyterm(const Polyterm& p, ByteWriter& w) {
  w.PutDouble(p.constant);
  w.PutU32(static_cast<uint32_t>(p.monomials.size()));
  for (const Monomial& m : p.monomials) {
    w.PutDouble(m.coeff);
    w.PutU32(static_cast<uint32_t>(m.bound.size()));
    for (Symbol b : m.bound) w.PutString(b.str());
    w.PutU32(static_cast<uint32_t>(m.atoms.size()));
    for (const ExprPtr& atom : m.atoms) EncodeExpr(atom, w);
  }
}

StatusOr<Polyterm> DecodePolyterm(ByteReader& r) {
  Polyterm p;
  SPORES_RETURN_IF_ERROR(r.GetDouble(&p.constant));
  uint32_t nmono;
  SPORES_RETURN_IF_ERROR(r.GetU32(&nmono));
  SPORES_RETURN_IF_ERROR(CheckCount(nmono, r.remaining(), "monomial"));
  p.monomials.reserve(nmono);
  for (uint32_t i = 0; i < nmono; ++i) {
    Monomial m;
    SPORES_RETURN_IF_ERROR(r.GetDouble(&m.coeff));
    uint32_t nbound;
    SPORES_RETURN_IF_ERROR(r.GetU32(&nbound));
    SPORES_RETURN_IF_ERROR(CheckCount(nbound, r.remaining(), "bound attr"));
    m.bound.reserve(nbound);
    for (uint32_t b = 0; b < nbound; ++b) {
      std::string name;
      SPORES_RETURN_IF_ERROR(r.GetString(&name));
      m.bound.push_back(Symbol::Intern(name));
    }
    uint32_t natoms;
    SPORES_RETURN_IF_ERROR(r.GetU32(&natoms));
    SPORES_RETURN_IF_ERROR(CheckCount(natoms, r.remaining(), "atom"));
    m.atoms.reserve(natoms);
    for (uint32_t a = 0; a < natoms; ++a) {
      SPORES_ASSIGN_OR_RETURN(ExprPtr atom, DecodeExpr(r));
      m.atoms.push_back(std::move(atom));
    }
    // Sorted-bound and hash-sorted-atom invariants are stated in the new
    // process's intern order / hash values; re-establish both.
    m.Normalize();
    p.monomials.push_back(std::move(m));
  }
  return p;
}

// ---------------------------------------------------------------------------
// PlanCacheKey / OptimizedPlan
// ---------------------------------------------------------------------------

void EncodePlanCacheKey(const PlanCacheKey& key, ByteWriter& w) {
  // Fingerprints are built from catalog metadata strings and the polyterm
  // signature (coefficients + counts) — all process-stable — so the string
  // round-trips verbatim.
  w.PutString(key.fingerprint);
  EncodePolyterm(key.canon, w);
}

StatusOr<PlanCacheKey> DecodePlanCacheKey(ByteReader& r) {
  PlanCacheKey key;
  SPORES_RETURN_IF_ERROR(r.GetString(&key.fingerprint));
  SPORES_ASSIGN_OR_RETURN(key.canon, DecodePolyterm(r));
  return key;
}

void EncodeOptimizedPlan(const OptimizedPlan& plan, ByteWriter& w) {
  EncodeExpr(plan.plan, w);
  w.PutDouble(plan.plan_cost);
  w.PutDouble(plan.original_cost);
  w.PutU8(plan.optimal ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(plan.alternatives.size()));
  for (const PlanChoice& c : plan.alternatives) {
    w.PutU8(c.strategy == ExtractionStrategy::kIlp ? 1 : 0);
    w.PutU8(c.optimal ? 1 : 0);
    w.PutDouble(c.cost);
    w.PutU8(c.la ? 1 : 0);
    if (c.la) EncodeExpr(c.la, w);
  }
}

StatusOr<OptimizedPlan> DecodeOptimizedPlan(ByteReader& r) {
  OptimizedPlan plan;
  SPORES_ASSIGN_OR_RETURN(plan.plan, DecodeExpr(r));
  SPORES_RETURN_IF_ERROR(r.GetDouble(&plan.plan_cost));
  SPORES_RETURN_IF_ERROR(r.GetDouble(&plan.original_cost));
  uint8_t optimal;
  SPORES_RETURN_IF_ERROR(r.GetU8(&optimal));
  plan.optimal = optimal != 0;
  uint32_t nalts;
  SPORES_RETURN_IF_ERROR(r.GetU32(&nalts));
  SPORES_RETURN_IF_ERROR(CheckCount(nalts, r.remaining(), "alternative"));
  plan.alternatives.reserve(nalts);
  for (uint32_t i = 0; i < nalts; ++i) {
    PlanChoice c;
    uint8_t ilp, opt, has_la;
    SPORES_RETURN_IF_ERROR(r.GetU8(&ilp));
    SPORES_RETURN_IF_ERROR(r.GetU8(&opt));
    SPORES_RETURN_IF_ERROR(r.GetDouble(&c.cost));
    SPORES_RETURN_IF_ERROR(r.GetU8(&has_la));
    c.strategy = ilp ? ExtractionStrategy::kIlp : ExtractionStrategy::kGreedy;
    c.optimal = opt != 0;
    if (has_la) {
      SPORES_ASSIGN_OR_RETURN(c.la, DecodeExpr(r));
    }
    plan.alternatives.push_back(std::move(c));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// EGraphImage
// ---------------------------------------------------------------------------

void EncodeEGraphImage(const EGraphImage& image, ByteWriter& w) {
  w.PutU32(static_cast<uint32_t>(image.classes.size()));
  for (const auto& nodes : image.classes) {
    w.PutU32(static_cast<uint32_t>(nodes.size()));
    for (const EGraphImage::Node& n : nodes) {
      w.PutU8(static_cast<uint8_t>(n.op));
      w.PutString(n.sym);
      w.PutDouble(n.value);
      w.PutU32(static_cast<uint32_t>(n.attrs.size()));
      for (const std::string& a : n.attrs) w.PutString(a);
      w.PutU32(static_cast<uint32_t>(n.children.size()));
      for (uint32_t c : n.children) w.PutU32(c);
    }
  }
  w.PutU32(static_cast<uint32_t>(image.roots.size()));
  for (uint32_t r : image.roots) w.PutU32(r);
}

StatusOr<EGraphImage> DecodeEGraphImage(ByteReader& r) {
  EGraphImage image;
  uint32_t nclasses;
  SPORES_RETURN_IF_ERROR(r.GetU32(&nclasses));
  SPORES_RETURN_IF_ERROR(CheckCount(nclasses, r.remaining(), "egraph class"));
  image.classes.resize(nclasses);
  for (uint32_t ci = 0; ci < nclasses; ++ci) {
    uint32_t nnodes;
    SPORES_RETURN_IF_ERROR(r.GetU32(&nnodes));
    SPORES_RETURN_IF_ERROR(CheckCount(nnodes, r.remaining(), "egraph node"));
    image.classes[ci].reserve(nnodes);
    for (uint32_t ni = 0; ni < nnodes; ++ni) {
      EGraphImage::Node n;
      uint8_t raw_op;
      SPORES_RETURN_IF_ERROR(r.GetU8(&raw_op));
      if (raw_op > static_cast<uint8_t>(Op::kUnbind)) {
        return Status::InvalidArgument("snapshot: unknown e-node op");
      }
      n.op = static_cast<Op>(raw_op);
      SPORES_RETURN_IF_ERROR(r.GetString(&n.sym));
      SPORES_RETURN_IF_ERROR(r.GetDouble(&n.value));
      uint32_t nattrs;
      SPORES_RETURN_IF_ERROR(r.GetU32(&nattrs));
      SPORES_RETURN_IF_ERROR(CheckCount(nattrs, r.remaining(), "e-node attr"));
      n.attrs.reserve(nattrs);
      for (uint32_t a = 0; a < nattrs; ++a) {
        std::string name;
        SPORES_RETURN_IF_ERROR(r.GetString(&name));
        n.attrs.push_back(std::move(name));
      }
      uint32_t nchildren;
      SPORES_RETURN_IF_ERROR(r.GetU32(&nchildren));
      SPORES_RETURN_IF_ERROR(
          CheckCount(nchildren, r.remaining(), "e-node child"));
      n.children.reserve(nchildren);
      for (uint32_t c = 0; c < nchildren; ++c) {
        uint32_t child;
        SPORES_RETURN_IF_ERROR(r.GetU32(&child));
        if (child >= nclasses) {
          return Status::InvalidArgument("snapshot: e-node child out of range");
        }
        n.children.push_back(child);
      }
      image.classes[ci].push_back(std::move(n));
    }
  }
  uint32_t nroots;
  SPORES_RETURN_IF_ERROR(r.GetU32(&nroots));
  SPORES_RETURN_IF_ERROR(CheckCount(nroots, r.remaining(), "egraph root"));
  image.roots.reserve(nroots);
  for (uint32_t i = 0; i < nroots; ++i) {
    uint32_t root;
    SPORES_RETURN_IF_ERROR(r.GetU32(&root));
    if (root >= nclasses) {
      return Status::InvalidArgument("snapshot: root out of range");
    }
    image.roots.push_back(root);
  }
  return image;
}

}  // namespace spores
