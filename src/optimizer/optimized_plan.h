// Result types for the session-based SPORES pipeline: per-stage timings, the
// extraction choices (greedy and/or ILP), and the OptimizedPlan a session
// returns — plan plus cost breakdown, saturation report, and cache/fallback
// provenance. These replace the old bare ExprPtr + OptimizeReport out-param.
#pragma once

#include <string>
#include <vector>

#include "src/egraph/runner.h"
#include "src/ir/expr.h"

namespace spores {

enum class ExtractionStrategy { kGreedy, kIlp };

inline const char* ExtractionStrategyName(ExtractionStrategy s) {
  return s == ExtractionStrategy::kGreedy ? "greedy" : "ilp";
}

/// Wall-clock breakdown across the pipeline stages (Fig 16's bars, plus the
/// cache probe and the fusion post-pass the old report omitted).
struct StageTimings {
  double translate_seconds = 0.0;  ///< LA -> RA (R_LR)
  double cache_seconds = 0.0;      ///< canonicalization + plan-cache probe
  double saturate_seconds = 0.0;   ///< equality saturation over R_EQ
  double extract_seconds = 0.0;    ///< extraction + RA -> LA lowering
  double fuse_seconds = 0.0;       ///< fused-operator post-pass

  double TotalSeconds() const {
    return translate_seconds + cache_seconds + saturate_seconds +
           extract_seconds + fuse_seconds;
  }
};

/// One extracted plan: the lowered LA term plus its model cost.
struct PlanChoice {
  ExtractionStrategy strategy = ExtractionStrategy::kGreedy;
  ExprPtr la;            ///< lowered (pre-fusion) LA plan
  double cost = 0.0;     ///< model cost of the selected operator set
  bool optimal = false;  ///< true when the ILP proved optimality
};

/// The full result of optimizing one expression through a session.
struct OptimizedPlan {
  ExprPtr plan;                ///< final executable plan (input on fallback)
  double plan_cost = 0.0;      ///< model cost of the chosen plan
  double original_cost = 0.0;  ///< model cost of the input plan (nonzero
                               ///< even on fallback; structural estimate
                               ///< when translation itself failed)
  bool optimal = false;        ///< extraction proved cost-optimality
  bool cache_hit = false;      ///< served from the canonical-form plan cache
  bool used_fallback = false;  ///< a stage failed; plan == (fused) input
  std::string fallback_reason;
  /// Deadline pressure changed the pipeline for this query: saturation was
  /// clamped below its configured budget and cut short, or ILP extraction
  /// was skipped for greedy. The plan is still valid and cost-improving —
  /// just not the plan an unconstrained run would have produced — so
  /// degraded plans are never inserted into the plan cache.
  bool degraded = false;
  std::string degrade_reason;
  /// Fingerprint of the plan-cache key this plan was optimized under (empty
  /// when no key was available, e.g. canonicalization bypass or cache-off
  /// calls). Routes execution feedback — OptimizerSession::RecordExecution /
  /// SessionPool::RecordExecution — back to the owning cache entry for
  /// drift-triggered re-extraction. Derived, not persisted: restore paths
  /// re-set it from the entry's key.
  std::string cache_fingerprint;
  StageTimings timings;
  RunnerReport saturation;     ///< zero-valued on cache hits and fallbacks
  /// All extraction choices computed this call (chosen one first). Contains
  /// both greedy and ILP when SessionConfig::collect_alternatives is set.
  std::vector<PlanChoice> alternatives;
};

}  // namespace spores
