// Plan cache keyed on canonical form (Definition 2.1): a query's translated
// RA term is canonicalized to a polyterm with its output attributes
// normalized to fixed sentinels, so two isomorphic queries — the same
// expression resubmitted (translation draws fresh attribute names each
// time), or a differently-written but equivalent one — map to isomorphic
// keys and share a plan without re-saturating (Theorem 2.3 makes this
// sound). The fingerprint folds in every input's dimensions and sparsity,
// so a dimension or density change is a miss: plan choice is cost-based and
// costs depend on the catalog.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/canon/canonical.h"
#include "src/optimizer/optimized_plan.h"
#include "src/rules/rules_lr.h"

namespace spores {

/// Cache key: an exact-match fingerprint (input metadata + polyterm
/// signature) selecting a bucket, plus the canonical polyterm compared up to
/// isomorphism within the bucket.
struct PlanCacheKey {
  std::string fingerprint;
  Polyterm canon;
};

/// Builds the cache key for one translated query. `la` is the source LA
/// expression (its variables' catalog metadata enter the fingerprint) and
/// `dims` the attribute-dimension environment the translation wrote into;
/// canonicalization records sentinel and fresh-rename dimensions in it, the
/// same contract as CanonicalizeRa (no copy — probes stay O(query), not
/// O(session age)). Fails when the RA term cannot be canonicalized; callers
/// then bypass the cache and optimize normally.
StatusOr<PlanCacheKey> BuildPlanCacheKey(const ExprPtr& la,
                                         const RaProgram& program,
                                         const Catalog& catalog,
                                         DimEnv& dims);

struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t insertions = 0;
  size_t evictions = 0;
};

/// LRU-bounded map from canonical form to OptimizedPlan. A hit refreshes the
/// entry's recency, so a steadily re-queried plan survives bursts of
/// one-off queries (the FIFO policy this replaces evicted by insertion age
/// regardless of use).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached plan isomorphic to `key`, or nullptr. Counts a hit
  /// or a miss either way; a hit moves the entry to most-recently-used.
  const OptimizedPlan* Lookup(const PlanCacheKey& key);

  /// Inserts (an already-present isomorphic entry is only refreshed).
  /// Evicts the least-recently-used entry when at capacity.
  void Insert(const PlanCacheKey& key, OptimizedPlan plan);

  /// Removes the entry isomorphic to `key`, if present. The drift
  /// re-optimization path uses Erase + Insert to *replace* a stale plan —
  /// Insert alone only refreshes recency for an isomorphic entry.
  bool Erase(const PlanCacheKey& key);

  size_t size() const { return size_; }
  const PlanCacheStats& stats() const { return stats_; }
  void Clear();

  /// Visits every entry, least-recently-used first, without touching
  /// recency. Persisting in this order means a restore that replays
  /// Insert() calls reproduces the recency order (and thus future eviction
  /// behavior) exactly.
  void ForEach(const std::function<void(const std::string& fingerprint,
                                        const Polyterm& canon,
                                        const OptimizedPlan& plan)>& fn) const;

 private:
  /// Recency list: least-recently-used at the front. Nodes name an entry by
  /// (fingerprint bucket, insertion order).
  using LruList = std::list<std::pair<std::string, uint64_t>>;

  struct Entry {
    Polyterm canon;
    OptimizedPlan plan;
    uint64_t order = 0;
    LruList::iterator lru_pos;
  };

  void Touch(Entry& entry);

  size_t capacity_;
  size_t size_ = 0;
  uint64_t next_order_ = 0;
  std::unordered_map<std::string, std::vector<Entry>> buckets_;
  LruList lru_;
  PlanCacheStats stats_;
};

}  // namespace spores
