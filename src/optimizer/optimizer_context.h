// Shared immutable compile state for optimizer sessions.
//
// An OptimizerContext hoists everything an OptimizerSession used to build
// privately but never mutates after construction — the compiled R_EQ rule
// set, the multi-pattern e-matching trie its LHS patterns merge into, and
// the attribute-dimension environment — into one read-only artifact that
// any number of per-shard sessions (src/serve/session_pool.h) share. What
// remains in a session is exactly the cheap mutable state a shard must own
// privately: its e-graph, plan cache, cost memo, scheduler, RNG seeds and
// stats. This is the "share compiled artifacts, never caches" split that
// keeps shared-nothing shards from inverting parallel scaling.
//
// Sharing contract (audited per member; see also the satellite notes on
// each type's own header):
//
//  * rules() — std::vector<Rewrite>, immutable after construction. Guards
//    and appliers are pure functions of their (EGraph, Subst) arguments
//    except for two audited effects: reads of the shared DimEnv (rule-5
//    aggregate folding; DimEnv is internally synchronized and write-once
//    per attribute) and Symbol::Intern calls (global intern table,
//    thread-safe). No rule captures per-session mutable state.
//
//  * compiled_rules() — CompiledRuleSet, immutable after construction.
//    MatchClass is const and writes only into the caller-owned MatchBank,
//    so one trie serves every shard's saturations concurrently.
//
//  * dims() — DimEnv, internally synchronized and monotone (write-once per
//    attribute). Concurrent translations on different shards intern
//    deterministically-named attributes (a pure function of structure and
//    dimension), so racing writers always agree; sharing one env is what
//    makes canonical forms and plan costs identical across shards.
//
//  * Catalogs are deliberately NOT part of the context: they are per-call,
//    and each session's long-lived graph keeps its own snapshot.
//
// base_config() is the SessionConfig sessions default to; per-shard
// overrides (e.g. a smaller plan cache) are passed at session construction.
#pragma once

#include <memory>
#include <vector>

#include "src/cost/calibration.h"
#include "src/egraph/pattern_program.h"
#include "src/egraph/rewrite.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/optimizer/optimized_plan.h"
#include "src/rules/ra_analysis.h"

namespace spores {

struct SessionConfig {
  RunnerConfig runner;  ///< saturation strategy / limits (Sec 3.1)
  ExtractionStrategy extraction = ExtractionStrategy::kIlp;
  IlpExtractConfig ilp;
  bool apply_fusion = true;  ///< run the fused-operator post-pass
  /// Also run the non-chosen extractor and surface both plans in
  /// OptimizedPlan::alternatives (greedy vs ILP, Fig 17's comparison).
  bool collect_alternatives = false;
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 256;
  /// Keep one saturated e-graph per catalog and resume saturation on it for
  /// every cache miss, instead of building a fresh graph per query.
  bool reuse_egraph = true;
  /// Arena size (interned e-nodes) above which the shared graph is
  /// compacted — rebuilt from the live query roots — before the next query.
  size_t egraph_node_budget = 50000;
  /// How many recent query roots survive a Compact().
  size_t max_live_roots = 12;
  /// Deadline steering (only active for queries that carry a Deadline in
  /// their QueryOptions::budget). Saturation may spend at most this share
  /// of the remaining budget — the rest is reserved for extraction and
  /// lowering, so a deadline cannot be eaten whole before a plan exists.
  double saturate_deadline_fraction = 0.7;
  /// Remaining budget below which ILP extraction degrades to greedy (the
  /// branch-and-bound solve is the one stage that can't produce a partial
  /// answer fast); recorded as OptimizedPlan::degraded provenance.
  double ilp_min_remaining_seconds = 0.05;
  /// Feedback-driven cost calibration knobs (EWMA alpha, dead band, drift
  /// threshold, multiplier clamps). Inert until execution feedback is
  /// actually recorded — a session that never sees RecordExecution costs
  /// bit-identically to one without calibration.
  CalibrationConfig calibration;
};

/// Compile-once, share-everywhere optimizer state. Construct one, hand a
/// shared_ptr<const OptimizerContext> to every session/pool that should
/// share the compiled rules; all members are safe for concurrent use from
/// any number of threads (see the sharing contract above).
class OptimizerContext {
 public:
  explicit OptimizerContext(SessionConfig base_config = {});

  OptimizerContext(const OptimizerContext&) = delete;
  OptimizerContext& operator=(const OptimizerContext&) = delete;

  const SessionConfig& base_config() const { return base_config_; }
  /// R_EQ, compiled once. Rule indices are shared by compiled_rules() and
  /// every session's scheduler.
  const std::vector<Rewrite>& rules() const { return rules_; }
  /// The rules' LHS patterns compiled into the shared multi-pattern trie
  /// (pattern programs + root-op discrimination).
  const CompiledRuleSet& compiled_rules() const { return compiled_rules_; }
  /// The attribute-dimension environment shared by translation, analysis,
  /// canonicalization, costing and rule folding across every session using
  /// this context (grows monotonically; internally synchronized).
  const std::shared_ptr<DimEnv>& dims() const { return dims_; }

 private:
  SessionConfig base_config_;
  std::shared_ptr<DimEnv> dims_;
  std::vector<Rewrite> rules_;
  CompiledRuleSet compiled_rules_;
};

}  // namespace spores
