// The SPORES optimizer pipeline (Fig 13):
//   LA expression -> translate to RA -> equality saturation over R_EQ ->
//   extract cheapest plan (greedy or ILP) -> translate back to LA ->
//   fused-operator post-pass.
// Any stage failure falls back to the input expression (never worse than
// no optimization).
#pragma once

#include <string>

#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/expr.h"
#include "src/rules/rules_lr.h"

namespace spores {

enum class ExtractionStrategy { kGreedy, kIlp };

struct SporesConfig {
  RunnerConfig runner;  ///< saturation strategy / limits (Sec 3.1)
  ExtractionStrategy extraction = ExtractionStrategy::kIlp;
  IlpExtractConfig ilp;
  bool apply_fusion = true;  ///< run the fused-operator post-pass
};

/// Compile-time breakdown, matching Fig 16's translate/saturate/extract bars.
struct OptimizeReport {
  double translate_seconds = 0.0;
  double saturate_seconds = 0.0;
  double extract_seconds = 0.0;
  RunnerReport saturation;
  double plan_cost = 0.0;       ///< model cost of the chosen plan
  double original_cost = 0.0;   ///< model cost of the input plan
  bool used_fallback = false;   ///< true if any stage failed
  std::string fallback_reason;

  double TotalSeconds() const {
    return translate_seconds + saturate_seconds + extract_seconds;
  }
};

/// Optimizes one LA expression DAG against input metadata in `catalog`.
class SporesOptimizer {
 public:
  explicit SporesOptimizer(SporesConfig config = {})
      : config_(std::move(config)) {}

  /// Returns the optimized LA expression (or the input on fallback).
  ExprPtr Optimize(const ExprPtr& expr, const Catalog& catalog,
                   OptimizeReport* report = nullptr) const;

 private:
  StatusOr<ExprPtr> OptimizeOrFail(const ExprPtr& expr, const Catalog& catalog,
                                   OptimizeReport* report) const;

  SporesConfig config_;
};

}  // namespace spores
