#include "src/optimizer/spores_optimizer.h"

#include "src/rules/rules_eq.h"
#include "src/rules/rules_fusion.h"
#include "src/util/timer.h"

namespace spores {

namespace {

// Model cost of a whole RA term: re-adds the term to a fresh graph... that
// would be expensive; instead charge the term tree against the class data by
// looking nodes up in the saturated graph. For reporting only.
double TermCost(const EGraph& egraph, const CostModel& cost,
                const ExprPtr& ra) {
  double total = 0.0;
  std::optional<ClassId> cls = egraph.LookupExpr(ra);
  (void)cls;
  // Tree walk: charge each node via a lookup of its own class; children
  // recurse. Nodes not present (shouldn't happen) charge 0.
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    for (const ExprPtr& c : e->children) walk(c);
    std::vector<ClassId> child_ids;
    child_ids.reserve(e->children.size());
    bool ok = true;
    for (const ExprPtr& c : e->children) {
      std::optional<ClassId> cid = egraph.LookupExpr(c);
      if (!cid) { ok = false; break; }
      child_ids.push_back(*cid);
    }
    if (!ok) return;
    ENode node = EGraph::ExprToENode(*e, std::move(child_ids));
    total += cost.NodeCost(egraph, node);
  };
  walk(ra);
  return total;
}

}  // namespace

ExprPtr SporesOptimizer::Optimize(const ExprPtr& expr, const Catalog& catalog,
                                  OptimizeReport* report) const {
  OptimizeReport local;
  OptimizeReport* rep = report ? report : &local;
  StatusOr<ExprPtr> result = OptimizeOrFail(expr, catalog, rep);
  if (!result.ok()) {
    rep->used_fallback = true;
    rep->fallback_reason = result.status().ToString();
    return config_.apply_fusion ? ApplyFusion(expr) : expr;
  }
  return std::move(result).value();
}

StatusOr<ExprPtr> SporesOptimizer::OptimizeOrFail(
    const ExprPtr& expr, const Catalog& catalog,
    OptimizeReport* report) const {
  // ---- Translate (LA -> RA) ----
  Timer timer;
  SPORES_ASSIGN_OR_RETURN(RaProgram program, TranslateLaToRa(expr, catalog));
  report->translate_seconds = timer.Seconds();

  // ---- Saturate ----
  timer.Reset();
  RaContext ctx{&catalog, program.dims};
  auto egraph = std::make_unique<EGraph>(std::make_unique<RaAnalysis>(ctx));
  ClassId root = egraph->AddExpr(program.ra);
  egraph->Rebuild();
  root = egraph->Find(root);
  Runner runner(egraph.get(), RaEqualityRules(ctx), config_.runner);
  report->saturation = runner.Run();
  report->saturate_seconds = timer.Seconds();
  root = egraph->Find(root);

  // ---- Extract ----
  timer.Reset();
  CostModel cost(ctx);
  StatusOr<ExtractionResult> extracted =
      config_.extraction == ExtractionStrategy::kIlp
          ? IlpExtract(*egraph, root, cost, config_.ilp)
          : GreedyExtract(*egraph, root, cost);
  if (!extracted.ok()) {
    report->extract_seconds = timer.Seconds();
    return extracted.status();
  }
  report->extract_seconds = timer.Seconds();
  report->plan_cost = extracted.value().cost;
  report->original_cost = TermCost(*egraph, cost, program.ra);

  // ---- Translate back (RA -> LA) ----
  SPORES_ASSIGN_OR_RETURN(
      ExprPtr la, TranslateRaToLa(extracted.value().expr, program, catalog));
  // Sanity: the optimized plan must keep the input's shape.
  SPORES_ASSIGN_OR_RETURN(Shape in_shape, InferShape(expr, catalog));
  SPORES_ASSIGN_OR_RETURN(Shape out_shape, InferShape(la, catalog));
  if (!(in_shape == out_shape)) {
    return Status::Internal("optimized plan changed output shape");
  }
  return config_.apply_fusion ? ApplyFusion(la) : la;
}

}  // namespace spores
