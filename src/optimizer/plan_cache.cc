#include "src/optimizer/plan_cache.h"

#include <cstdio>

#include "src/canon/isomorphism.h"

namespace spores {

StatusOr<PlanCacheKey> BuildPlanCacheKey(const ExprPtr& la,
                                         const RaProgram& program,
                                         const Catalog& catalog,
                                         DimEnv& dims) {
  // Normalize the free (output) attributes to fixed sentinels: every
  // translation draws fresh output names, and PolytermIsomorphic requires
  // free attributes to match exactly. The sentinels are deliberately NOT
  // registered in `dims` — they are free in the whole term, so
  // canonicalization never reads their dimension (only aggregated
  // attributes are looked up), and registering them would re-bind the
  // shared env on every output-shape change.
  std::unordered_map<Symbol, Symbol> renaming;
  if (!program.out_row.empty()) {
    renaming.emplace(program.out_row, Symbol::Intern("$cache_row"));
  }
  if (!program.out_col.empty()) {
    renaming.emplace(program.out_col, Symbol::Intern("$cache_col"));
  }
  ExprPtr ra =
      renaming.empty() ? program.ra : RenameAttrs(program.ra, renaming);
  SPORES_ASSIGN_OR_RETURN(Polyterm canon, CanonicalizeRa(ra, dims));

  PlanCacheKey key;
  key.canon = std::move(canon);
  // Fingerprint: output shape, each referenced input's dims + sparsity, and
  // the polyterm signature. All exact-match; isomorphism only has to absorb
  // attribute renaming within a bucket.
  std::string& fp = key.fingerprint;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "out:%lldx%lld;",
                static_cast<long long>(program.out_shape.rows),
                static_cast<long long>(program.out_shape.cols));
  fp += buf;
  for (Symbol v : CollectVars(la)) {
    if (!catalog.Has(v)) continue;  // translation already validated inputs
    const MatrixMeta& m = catalog.Get(v);
    fp += v.str();  // appended separately: names must never truncate
    std::snprintf(buf, sizeof(buf), ":%lldx%lld@%.17g;",
                  static_cast<long long>(m.shape.rows),
                  static_cast<long long>(m.shape.cols), m.sparsity);
    fp += buf;
  }
  fp += PolytermSignature(key.canon);
  return key;
}

void PlanCache::Touch(Entry& entry) {
  // Most-recently-used lives at the back of the recency list.
  lru_.splice(lru_.end(), lru_, entry.lru_pos);
}

const OptimizedPlan* PlanCache::Lookup(const PlanCacheKey& key) {
  auto it = buckets_.find(key.fingerprint);
  if (it != buckets_.end()) {
    for (Entry& e : it->second) {
      if (PolytermIsomorphic(e.canon, key.canon)) {
        ++stats_.hits;
        Touch(e);
        return &e.plan;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void PlanCache::Insert(const PlanCacheKey& key, OptimizedPlan plan) {
  if (capacity_ == 0) return;
  std::vector<Entry>& bucket = buckets_[key.fingerprint];
  for (Entry& e : bucket) {
    if (PolytermIsomorphic(e.canon, key.canon)) {
      Touch(e);
      return;
    }
  }
  while (size_ >= capacity_ && !lru_.empty()) {
    auto [fp, order] = lru_.front();
    lru_.pop_front();
    auto victim = buckets_.find(fp);
    if (victim == buckets_.end()) continue;
    std::vector<Entry>& entries = victim->second;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].order == order) {
        entries.erase(entries.begin() + i);
        --size_;
        ++stats_.evictions;
        break;
      }
    }
    if (entries.empty()) buckets_.erase(victim);
  }
  Entry entry;
  entry.canon = key.canon;
  entry.plan = std::move(plan);
  entry.order = next_order_++;
  entry.lru_pos = lru_.emplace(lru_.end(), key.fingerprint, entry.order);
  buckets_[key.fingerprint].push_back(std::move(entry));
  ++size_;
  ++stats_.insertions;
}

bool PlanCache::Erase(const PlanCacheKey& key) {
  auto it = buckets_.find(key.fingerprint);
  if (it == buckets_.end()) return false;
  std::vector<Entry>& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (PolytermIsomorphic(bucket[i].canon, key.canon)) {
      lru_.erase(bucket[i].lru_pos);
      bucket.erase(bucket.begin() + i);
      --size_;
      if (bucket.empty()) buckets_.erase(it);
      return true;
    }
  }
  return false;
}

void PlanCache::ForEach(
    const std::function<void(const std::string& fingerprint,
                             const Polyterm& canon,
                             const OptimizedPlan& plan)>& fn) const {
  for (const auto& [fp, order] : lru_) {
    auto it = buckets_.find(fp);
    if (it == buckets_.end()) continue;
    for (const Entry& e : it->second) {
      if (e.order == order) {
        fn(fp, e.canon, e.plan);
        break;
      }
    }
  }
}

void PlanCache::Clear() {
  buckets_.clear();
  lru_.clear();
  size_ = 0;
}

}  // namespace spores
