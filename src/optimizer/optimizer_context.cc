#include "src/optimizer/optimizer_context.h"

#include "src/rules/rules_eq.h"

namespace spores {

OptimizerContext::OptimizerContext(SessionConfig base_config)
    : base_config_(std::move(base_config)), dims_(std::make_shared<DimEnv>()) {
  // R_EQ reads only the shared DimEnv (rule-5 folding), never the catalog,
  // so one compilation serves every query of every session sharing this
  // context — both the rule vector and the e-matching trie its LHS patterns
  // merge into.
  rules_ = RaEqualityRules(RaContext{nullptr, dims_});
  compiled_rules_ = CompiledRuleSet(LhsPatterns(rules_));
}

}  // namespace spores
