// Session-based SPORES optimizer (Fig 13 as a composable pipeline).
//
// An OptimizerSession amortizes compile state across many queries: it owns
// the compiled R_EQ rule set, the attribute-dimension environment shared by
// translation / analysis / costing, the saturation RNG, and a plan cache
// keyed on canonical form (isomorphic queries skip saturation entirely).
//
// The pipeline stages are first-class and individually invocable —
//
//   Translate  LA -> RA                      (R_LR, Fig 2)
//   Saturate   equality saturation over R_EQ (Fig 8, Sec 3.1)
//   Extract    cheapest-plan extraction + RA -> LA lowering
//   Fuse       fused-operator post-pass
//
// — each returning StatusOr<stage result> with its own report, so callers
// can run the full Optimize() driver (cache + fallback policy included) or
// compose stages themselves, e.g. to inspect the saturated e-graph or to
// compare greedy and ILP extractions on one saturation.
//
// Any stage failure inside Optimize() falls back to the (fused) input
// expression — never worse than no optimization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/expr.h"
#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/plan_cache.h"
#include "src/rules/rules_lr.h"

namespace spores {

struct SessionConfig {
  RunnerConfig runner;  ///< saturation strategy / limits (Sec 3.1)
  ExtractionStrategy extraction = ExtractionStrategy::kIlp;
  IlpExtractConfig ilp;
  bool apply_fusion = true;  ///< run the fused-operator post-pass
  /// Also run the non-chosen extractor and surface both plans in
  /// OptimizedPlan::alternatives (greedy vs ILP, Fig 17's comparison).
  bool collect_alternatives = false;
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 256;
};

/// Result of the Translate stage.
struct Translation {
  ExprPtr la;         ///< the source expression
  RaProgram program;  ///< RA term + shared attribute dims
  double seconds = 0.0;
};

/// Result of the Saturate stage. Owns the saturated e-graph; the catalog
/// passed to Saturate must stay alive while this is used.
struct Saturation {
  std::unique_ptr<EGraph> egraph;
  ClassId root = kInvalidClassId;
  RunnerReport report;
  double original_cost = 0.0;  ///< model cost of the input term
  double seconds = 0.0;
};

/// Result of the Extract stage: lowered LA plans with model costs.
struct Extraction {
  PlanChoice chosen;
  /// Every choice computed (chosen first; both strategies when
  /// SessionConfig::collect_alternatives is set).
  std::vector<PlanChoice> alternatives;
  double seconds = 0.0;
};

/// Cumulative per-session counters (cache behavior, fallbacks, compile time).
struct SessionStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;  ///< includes canonicalization bypasses
  size_t fallbacks = 0;
  size_t saturations = 0;  ///< queries that actually ran saturation
  double compile_seconds = 0.0;

  std::string ToString() const;
};

/// A long-lived optimizer: construct once, call Optimize per query. The
/// catalog is per-call so one session can serve queries over many input
/// bindings; the plan cache discriminates on input dimensions and sparsity.
/// Not thread-safe; use one session per thread.
class OptimizerSession {
 public:
  explicit OptimizerSession(SessionConfig config = {});

  OptimizerSession(const OptimizerSession&) = delete;
  OptimizerSession& operator=(const OptimizerSession&) = delete;

  /// Full pipeline with plan-cache probe and fallback policy. Never fails:
  /// on stage failure the returned plan is the (fused) input and
  /// `used_fallback` is set with the stage's error as the reason.
  OptimizedPlan Optimize(const ExprPtr& expr, const Catalog& catalog);

  // ---- Individually-invocable pipeline stages ----

  /// LA -> RA. Records attribute dimensions in the session's shared DimEnv.
  StatusOr<Translation> Translate(const ExprPtr& la, const Catalog& catalog);

  /// Builds an e-graph from the translation and equality-saturates it with
  /// the session's compiled rule set.
  StatusOr<Saturation> Saturate(const Translation& t, const Catalog& catalog);

  /// Extracts the cheapest plan (per config) from a saturated e-graph and
  /// lowers it back to LA, verifying the output shape is preserved.
  StatusOr<Extraction> Extract(const Saturation& s, const Translation& t,
                               const Catalog& catalog) const;

  /// Fused-operator post-pass (always applies; Optimize gates it on
  /// config.apply_fusion).
  ExprPtr Fuse(const ExprPtr& la) const;

  // ---- Introspection ----

  const SessionConfig& config() const { return config_; }
  const SessionStats& stats() const { return stats_; }
  const PlanCacheStats& cache_stats() const { return cache_.stats(); }
  size_t PlanCacheSize() const { return cache_.size(); }
  void ClearPlanCache() { cache_.Clear(); }
  /// The attribute-dimension environment shared across this session's
  /// queries (grows monotonically; attribute names are globally fresh).
  const DimEnv& dims() const { return *dims_; }

 private:
  OptimizedPlan Fallback(const ExprPtr& expr, const Status& status,
                         OptimizedPlan out);

  SessionConfig config_;
  std::shared_ptr<DimEnv> dims_;
  std::vector<Rewrite> rules_;  ///< R_EQ, compiled once per session
  PlanCache cache_;
  SessionStats stats_;
  uint64_t saturation_count_ = 0;  ///< per-query saturation seed offset
};

}  // namespace spores
