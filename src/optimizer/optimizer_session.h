// Session-based SPORES optimizer (Fig 13 as a composable pipeline).
//
// An OptimizerSession amortizes compile state across many queries: it owns
// the compiled R_EQ rule set, the attribute-dimension environment shared by
// translation / analysis / costing, the saturation RNG, a plan cache keyed
// on canonical form (isomorphic queries skip saturation entirely), and — the
// deepest reuse — one long-lived, already-saturated e-graph per catalog. A
// plan-cache miss does not start saturation from scratch: the new query is
// AddExpr'd into the existing graph and saturation *resumes*, so every
// equivalence proved for earlier queries is shared, and the persistent
// RuleScheduler makes the resumed run incremental (rules only revisit
// classes the new query touched).
//
// The shared graph is keyed on a catalog signature (input names, dims,
// sparsity): analysis invariants and costs are catalog-dependent, so a
// catalog change resets it. Per-query root classes are tracked, and when the
// node arena outgrows `egraph_node_budget` the graph is compacted — rebuilt
// from the most recent roots — before absorbing the next query.
//
// The pipeline stages are first-class and individually invocable —
//
//   Translate  LA -> RA                      (R_LR, Fig 2)
//   Saturate   equality saturation over R_EQ (Fig 8, Sec 3.1)
//   Extract    cheapest-plan extraction + RA -> LA lowering
//   Fuse       fused-operator post-pass
//
// — each returning StatusOr<stage result> with its own report, so callers
// can run the full Optimize() driver (cache + fallback policy included) or
// compose stages themselves, e.g. to inspect the saturated e-graph or to
// compare greedy and ILP extractions on one saturation.
//
// Any stage failure inside Optimize() falls back to the (fused) input
// expression — never worse than no optimization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/expr.h"
#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/plan_cache.h"
#include "src/rules/rules_lr.h"

namespace spores {

struct SessionConfig {
  RunnerConfig runner;  ///< saturation strategy / limits (Sec 3.1)
  ExtractionStrategy extraction = ExtractionStrategy::kIlp;
  IlpExtractConfig ilp;
  bool apply_fusion = true;  ///< run the fused-operator post-pass
  /// Also run the non-chosen extractor and surface both plans in
  /// OptimizedPlan::alternatives (greedy vs ILP, Fig 17's comparison).
  bool collect_alternatives = false;
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 256;
  /// Keep one saturated e-graph per catalog and resume saturation on it for
  /// every cache miss, instead of building a fresh graph per query.
  bool reuse_egraph = true;
  /// Arena size (interned e-nodes) above which the shared graph is
  /// compacted — rebuilt from the live query roots — before the next query.
  size_t egraph_node_budget = 50000;
  /// How many recent query roots survive a Compact().
  size_t max_live_roots = 12;
};

/// Result of the Translate stage.
struct Translation {
  ExprPtr la;         ///< the source expression
  RaProgram program;  ///< RA term + shared attribute dims
  double seconds = 0.0;
};

/// Result of the Saturate stage. `egraph` is either the session's shared
/// graph (reuse_egraph; the shared_ptr also keeps the session's catalog
/// snapshot alive, so the result outlives even a session reset) or a graph
/// owned by this result — in the latter case the catalog passed to Saturate
/// must stay alive while this is used.
struct Saturation {
  std::shared_ptr<EGraph> egraph;
  ClassId root = kInvalidClassId;
  bool reused_graph = false;  ///< saturation resumed on a warm shared graph
  RunnerReport report;
  double original_cost = 0.0;  ///< model cost of the input term
  double seconds = 0.0;
};

/// Result of the Extract stage: lowered LA plans with model costs.
struct Extraction {
  PlanChoice chosen;
  /// Every choice computed (chosen first; both strategies when
  /// SessionConfig::collect_alternatives is set).
  std::vector<PlanChoice> alternatives;
  double seconds = 0.0;
};

/// Cumulative per-session counters (cache behavior, fallbacks, compile time).
struct SessionStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;  ///< includes canonicalization bypasses
  size_t fallbacks = 0;
  size_t saturations = 0;   ///< queries that actually ran saturation
  size_t graph_reuses = 0;  ///< saturations resumed on the warm shared graph
  size_t graph_resets = 0;  ///< catalog changes that discarded the graph
  size_t compactions = 0;   ///< arena-budget-triggered Compact() runs
  size_t arena_high_water = 0;  ///< peak shared-graph arena size observed
  double compile_seconds = 0.0;

  std::string ToString() const;
};

/// A long-lived optimizer: construct once, call Optimize per query. The
/// catalog is per-call so one session can serve queries over many input
/// bindings; the plan cache discriminates on input dimensions and sparsity,
/// and the shared e-graph resets when the catalog signature changes. Not
/// thread-safe; use one session per thread.
class OptimizerSession {
 public:
  explicit OptimizerSession(SessionConfig config = {});

  OptimizerSession(const OptimizerSession&) = delete;
  OptimizerSession& operator=(const OptimizerSession&) = delete;

  /// Full pipeline with plan-cache probe and fallback policy. Never fails:
  /// on stage failure the returned plan is the (fused) input and
  /// `used_fallback` is set with the stage's error as the reason.
  OptimizedPlan Optimize(const ExprPtr& expr, const Catalog& catalog);

  // ---- Individually-invocable pipeline stages ----

  /// LA -> RA. Records attribute dimensions in the session's shared DimEnv.
  StatusOr<Translation> Translate(const ExprPtr& la, const Catalog& catalog);

  /// Saturates the translation with the session's compiled rule set — on the
  /// session's long-lived e-graph when config().reuse_egraph (resuming from
  /// every earlier query's equivalences), else on a fresh graph.
  StatusOr<Saturation> Saturate(const Translation& t, const Catalog& catalog);

  /// Extracts the cheapest plan (per config) from a saturated e-graph and
  /// lowers it back to LA, verifying the output shape is preserved. Work is
  /// scoped to the classes reachable from the query's root.
  StatusOr<Extraction> Extract(const Saturation& s, const Translation& t,
                               const Catalog& catalog) const;

  /// Fused-operator post-pass (always applies; Optimize gates it on
  /// config.apply_fusion).
  ExprPtr Fuse(const ExprPtr& la) const;

  // ---- Introspection ----

  const SessionConfig& config() const { return config_; }
  const SessionStats& stats() const { return stats_; }
  const PlanCacheStats& cache_stats() const { return cache_.stats(); }
  size_t PlanCacheSize() const { return cache_.size(); }
  void ClearPlanCache() { cache_.Clear(); }
  /// The attribute-dimension environment shared across this session's
  /// queries (grows monotonically; attribute names are globally fresh).
  const DimEnv& dims() const { return *dims_; }
  /// The session's long-lived e-graph (null until the first reuse-path
  /// saturation). Exposed for tests and diagnostics.
  const EGraph* shared_egraph() const;
  /// Canonical ids of the query roots currently kept live in the shared
  /// graph (most recent last).
  std::vector<ClassId> live_roots() const;

 private:
  /// Everything whose lifetime is tied to one shared e-graph: the catalog
  /// snapshot its analysis reads, the graph, the persistent scheduler, and
  /// the live query roots. Saturations alias into this via shared_ptr, so a
  /// reset or Compact() never invalidates an outstanding stage result.
  struct GraphState {
    explicit GraphState(const Catalog& cat, std::string sig,
                        std::shared_ptr<DimEnv> dims, size_t num_rules,
                        const SchedulerConfig& scheduler_config);
    Catalog catalog;  ///< snapshot; the analysis context points here
    std::string signature;
    std::unique_ptr<EGraph> egraph;
    RuleScheduler scheduler;
    std::vector<ClassId> roots;  ///< recent query roots, most recent last
    /// Extraction cost cache, version-tagged per class: later queries'
    /// extractions reuse costs for every class their saturation left
    /// untouched. Lifetime-tied to `egraph` (discarded with it on
    /// reset/Compact).
    CostMemo cost_memo;
  };

  OptimizedPlan Fallback(const ExprPtr& expr, const Status& status,
                         OptimizedPlan out);
  /// Returns the shared graph for `catalog`, creating or resetting it when
  /// the signature changed, and compacting it when over the arena budget.
  GraphState& EnsureSharedGraph(const Catalog& catalog);
  void CompactSharedGraph();
  void RecordRoot(ClassId root);

  SessionConfig config_;
  std::shared_ptr<DimEnv> dims_;
  std::vector<Rewrite> rules_;  ///< R_EQ, compiled once per session
  /// The rules' LHS patterns compiled into the shared multi-pattern trie
  /// (pattern programs + root-op discrimination), once per session; every
  /// saturation — fresh or resumed — matches through it.
  CompiledRuleSet compiled_rules_;
  PlanCache cache_;
  SessionStats stats_;
  std::shared_ptr<GraphState> graph_;  ///< null until first reuse saturation
  uint64_t saturation_count_ = 0;  ///< per-query saturation seed offset
};

}  // namespace spores
