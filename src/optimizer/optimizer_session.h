// Session-based SPORES optimizer (Fig 13 as a composable pipeline).
//
// An OptimizerSession amortizes compile state across many queries: it owns
// the compiled R_EQ rule set, the attribute-dimension environment shared by
// translation / analysis / costing, the saturation RNG, a plan cache keyed
// on canonical form (isomorphic queries skip saturation entirely), and — the
// deepest reuse — one long-lived, already-saturated e-graph per catalog. A
// plan-cache miss does not start saturation from scratch: the new query is
// AddExpr'd into the existing graph and saturation *resumes*, so every
// equivalence proved for earlier queries is shared, and the persistent
// RuleScheduler makes the resumed run incremental (rules only revisit
// classes the new query touched).
//
// The shared graph is keyed on a catalog signature (input names, dims,
// sparsity): analysis invariants and costs are catalog-dependent, so a
// catalog change resets it. Per-query root classes are tracked, and when the
// node arena outgrows `egraph_node_budget` the graph is compacted — rebuilt
// from the most recent roots — before absorbing the next query.
//
// The pipeline stages are first-class and individually invocable —
//
//   Translate  LA -> RA                      (R_LR, Fig 2)
//   Saturate   equality saturation over R_EQ (Fig 8, Sec 3.1)
//   Extract    cheapest-plan extraction + RA -> LA lowering
//   Fuse       fused-operator post-pass
//
// — each returning StatusOr<stage result> with its own report, so callers
// can run the full Optimize() driver (cache + fallback policy included) or
// compose stages themselves, e.g. to inspect the saturated e-graph or to
// compare greedy and ILP extractions on one saturation.
//
// Any stage failure inside Optimize() falls back to the (fused) input
// expression — never worse than no optimization.
//
// Compile state that is immutable after construction (the compiled R_EQ
// rule set, the e-matching trie, the DimEnv) lives in an OptimizerContext
// (optimizer_context.h). A session constructed the plain way owns a private
// context; the serving layer constructs many sessions over one shared
// context, so a session is exactly the per-shard mutable state.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cost/calibration.h"
#include "src/cost/cost_model.h"
#include "src/egraph/egraph_image.h"
#include "src/egraph/runner.h"
#include "src/extract/extractor.h"
#include "src/ir/expr.h"
#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/optimizer_context.h"
#include "src/optimizer/plan_cache.h"
#include "src/rules/rules_lr.h"
#include "src/util/cancellation.h"
#include "src/util/deadline.h"

namespace spores {

/// Per-query wall-clock/cancellation budget, threaded from the serving
/// layer through every pipeline stage: Saturate derives its runner timeout
/// from the remaining deadline, extraction clamps (or skips) the ILP solve,
/// and the cancel token reaches the saturation runner's and branch-and-
/// bound's budget checkpoints, so Cancel() stops in-flight work. Default:
/// no deadline, inert token — exactly the unconstrained pipeline.
struct StageBudget {
  Deadline deadline;
  CancelToken cancel;
};

/// Result of the Translate stage.
struct Translation {
  ExprPtr la;         ///< the source expression
  RaProgram program;  ///< RA term + shared attribute dims
  double seconds = 0.0;
};

/// Result of the Saturate stage. `egraph` is either the session's shared
/// graph (reuse_egraph; the shared_ptr also keeps the session's catalog
/// snapshot alive, so the result outlives even a session reset) or a graph
/// owned by this result — in the latter case the catalog passed to Saturate
/// must stay alive while this is used.
struct Saturation {
  std::shared_ptr<EGraph> egraph;
  ClassId root = kInvalidClassId;
  bool reused_graph = false;  ///< saturation resumed on a warm shared graph
  /// The query's deadline clamped the runner timeout below its configured
  /// budget. Combined with a kTimeout stop this means the deadline (not the
  /// normal compile budget) cut saturation short — degradation provenance.
  bool deadline_clamped = false;
  RunnerReport report;
  double original_cost = 0.0;  ///< model cost of the input term
  double seconds = 0.0;
};

/// Result of the Extract stage: lowered LA plans with model costs.
struct Extraction {
  PlanChoice chosen;
  /// Every choice computed (chosen first; both strategies when
  /// SessionConfig::collect_alternatives is set).
  std::vector<PlanChoice> alternatives;
  /// The deadline forced greedy extraction although ILP was configured
  /// (remaining budget under SessionConfig::ilp_min_remaining_seconds).
  bool degraded_to_greedy = false;
  /// The deadline clamped the ILP solve below its configured budget AND
  /// the clamped solve failed to prove optimality — the plan may be weaker
  /// than an unconstrained run's (degradation provenance; an unclamped
  /// non-optimal ILP is just the configured budget doing its job).
  bool deadline_limited_ilp = false;
  /// The deadline suppressed the collect_alternatives ILP pass: the chosen
  /// plan is unaffected, but the result lacks alternatives an
  /// unconstrained run would carry (so it must not be cached).
  bool alternatives_suppressed = false;
  double seconds = 0.0;
};

/// Cumulative per-session counters (cache behavior, fallbacks, compile time).
struct SessionStats {
  size_t queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;  ///< includes canonicalization bypasses
  size_t fallbacks = 0;
  size_t saturations = 0;   ///< queries that actually ran saturation
  size_t graph_reuses = 0;  ///< saturations resumed on the warm shared graph
  size_t graph_resets = 0;  ///< catalog changes that discarded the graph
  size_t compactions = 0;   ///< arena-budget-triggered Compact() runs
  size_t arena_high_water = 0;  ///< peak shared-graph arena size observed
  size_t restored_plans = 0;    ///< plan-cache entries loaded from a snapshot
  size_t restored_classes = 0;  ///< e-classes rebuilt from a snapshot image
  // Feedback loop (RecordExecution): calibration moves and the re-extraction
  // work they trigger. `saturations` deliberately does NOT move on any of
  // these — drift re-optimization re-*extracts* against the warm graph,
  // never re-saturates (asserted by serve_test and bench_runtime_e2e).
  size_t recalibrations = 0;       ///< calibration version bumps observed
  size_t drift_invalidations = 0;  ///< cached plans invalidated for drift
  size_t re_extractions = 0;       ///< drift-triggered warm re-extractions
  size_t plan_upgrades = 0;        ///< degraded plans upgraded to full ILP
  size_t restored_calibration_cells = 0;  ///< cells loaded from a snapshot
  double compile_seconds = 0.0;

  std::string ToString() const;
};

/// Per-query knobs for the serving path. Defaults reproduce plain
/// Optimize(expr, catalog).
struct QueryOptions {
  /// Precomputed canonical-form cache key (the shard router builds it to
  /// pick a shard; passing it here skips re-canonicalizing and lets a warm
  /// hit skip translation entirely). Must describe (expr, catalog).
  const PlanCacheKey* key = nullptr;
  /// Precomputed LA->RA translation (the router's other by-product): a
  /// cache miss then skips the session's own Translate stage too. Must
  /// describe (expr, catalog) and have been translated against this
  /// session's shared DimEnv (any session of the same context qualifies).
  /// Contract: a caller precomputing the translation is expected to have
  /// attempted the cache key as well — translation-without-key tells the
  /// session canonicalization already failed, and the (known-failing)
  /// canonicalization walk is not repeated.
  const RaProgram* translation = nullptr;
  /// When false, this call neither probes nor fills the session's plan
  /// cache. The pool uses this for stolen jobs so a shard's cache only ever
  /// holds keys the router assigned to it.
  bool use_plan_cache = true;
  /// When true, this call must not disturb the session's long-lived shared
  /// e-graph: saturation resumes on it only if the query's catalog
  /// signature already matches, and otherwise runs on a throwaway fresh
  /// graph. The pool sets this for stolen jobs — a foreign-catalog query
  /// resetting the thief's warm graph would cost that shard's own traffic
  /// a cold resaturation.
  bool preserve_shared_egraph = false;
  /// The query's remaining wall budget and cancellation token, threaded
  /// through every stage (see StageBudget). A cache hit is served even
  /// past the deadline (it is effectively free); everything else degrades
  /// or aborts as the budget runs out, and degraded plans are not cached.
  StageBudget budget;
};

/// What one execution of an optimized plan observed, fed back through
/// RecordExecution. Build `samples` from ExecStats::profile (see
/// src/serve/execution_feedback.h for the conversion helper).
struct ExecutionFeedback {
  /// OptimizedPlan::cache_fingerprint of the executed plan; empty disables
  /// drift handling for this record (calibration still happens).
  std::string fingerprint;
  /// The plan's predicted model cost (OptimizedPlan::plan_cost) at the time
  /// it was handed out; <= 0 disables drift handling.
  double predicted_cost = 0.0;
  std::vector<CalibrationSample> samples;
};

/// What RecordExecution did with one feedback record.
struct FeedbackResult {
  bool recalibrated = false;    ///< a published multiplier moved (version bump)
  bool drift_detected = false;  ///< predicted/observed outside the threshold
  bool reextracted = false;     ///< the cached plan was replaced via warm
                                ///< re-extraction (no saturation)
  /// Observed cost of this execution in model units (-1 until the
  /// calibration baseline has warmed up).
  double observed_cost_units = -1.0;
};

/// A long-lived optimizer: construct once, call Optimize per query. The
/// catalog is per-call so one session can serve queries over many input
/// bindings; the plan cache discriminates on input dimensions and sparsity,
/// and the shared e-graph resets when the catalog signature changes.
///
/// A session itself is NOT thread-safe — it is the cheap per-shard mutable
/// state (e-graph, plan cache, cost memo, scheduler, stats) of the
/// context/session split; use one session per thread. Sessions constructed
/// over one shared OptimizerContext may run concurrently: everything they
/// share through it is immutable or internally synchronized (see
/// optimizer_context.h for the audited contract).
class OptimizerSession {
 public:
  /// Convenience: builds a private OptimizerContext from `config`.
  explicit OptimizerSession(SessionConfig config = {});

  /// Shard form: share `context`'s compiled rules / trie / DimEnv; `config`
  /// overrides the context's base_config for this session (pass nullopt to
  /// inherit it).
  explicit OptimizerSession(std::shared_ptr<const OptimizerContext> context,
                            std::optional<SessionConfig> config = std::nullopt);

  OptimizerSession(const OptimizerSession&) = delete;
  OptimizerSession& operator=(const OptimizerSession&) = delete;

  /// Full pipeline with plan-cache probe and fallback policy. Never fails:
  /// on stage failure the returned plan is the (fused) input and
  /// `used_fallback` is set with the stage's error as the reason.
  OptimizedPlan Optimize(const ExprPtr& expr, const Catalog& catalog);

  /// As above with per-query options (precomputed cache key, cache bypass).
  OptimizedPlan Optimize(const ExprPtr& expr, const Catalog& catalog,
                         const QueryOptions& options);

  // ---- Individually-invocable pipeline stages ----

  /// LA -> RA. Records attribute dimensions in the session's shared DimEnv.
  StatusOr<Translation> Translate(const ExprPtr& la, const Catalog& catalog);

  /// Saturates the translation with the session's compiled rule set — on the
  /// session's long-lived e-graph when config().reuse_egraph (resuming from
  /// every earlier query's equivalences), else on a fresh graph. With
  /// `preserve_shared_graph`, a catalog whose signature does not match the
  /// current shared graph saturates on a fresh graph instead of resetting
  /// it (see QueryOptions::preserve_shared_egraph). `budget` clamps the
  /// runner timeout to saturate_deadline_fraction of the remaining deadline
  /// and wires the cancel token into the runner's checkpoints.
  StatusOr<Saturation> Saturate(const Translation& t, const Catalog& catalog,
                                bool preserve_shared_graph = false,
                                const StageBudget& budget = {});

  /// Extracts the cheapest plan (per config) from a saturated e-graph and
  /// lowers it back to LA, verifying the output shape is preserved. Work is
  /// scoped to the classes reachable from the query's root. `budget` clamps
  /// the ILP solve to the remaining deadline — and degrades it to greedy
  /// entirely when under ilp_min_remaining_seconds (Extraction::
  /// degraded_to_greedy). `force_strategy` overrides config().extraction
  /// for this call (the degraded-plan upgrade path forces a full ILP solve
  /// regardless of the session default).
  StatusOr<Extraction> Extract(
      const Saturation& s, const Translation& t, const Catalog& catalog,
      const StageBudget& budget = {},
      std::optional<ExtractionStrategy> force_strategy = std::nullopt) const;

  /// Fused-operator post-pass (always applies; Optimize gates it on
  /// config.apply_fusion).
  ExprPtr Fuse(const ExprPtr& la) const;

  // ---- Feedback loop (observe -> calibrate -> re-extract) ----

  /// Feeds one executed plan's observations back: folds the samples into
  /// the session's calibration table (counting `recalibrations` when a
  /// multiplier publishes), then — when the predicted/observed cost ratio
  /// falls outside [1/drift_threshold, drift_threshold] — invalidates the
  /// plan-cache entry named by `feedback.fingerprint` and re-extracts it
  /// against the still-warm shared e-graph. Re-extraction never saturates:
  /// `SessionStats::saturations` is untouched by this call. Plans whose
  /// warm-graph anchor is gone (graph reset or compacted since) keep their
  /// cached plan — it is still correct, just possibly stale.
  FeedbackResult RecordExecution(const ExecutionFeedback& feedback);

  /// Upgrades one pending degraded plan (deadline-degraded extraction
  /// recorded by Optimize) to a full ILP extraction against the warm graph,
  /// inserting the result into the plan cache. Returns true when an upgrade
  /// ran; callers (the pool's shallow-queue control path) invoke this only
  /// when idle. Counts SessionStats::plan_upgrades.
  bool UpgradeOnePendingPlan();

  /// Degraded plans queued for background upgrade.
  size_t PendingUpgrades() const { return pending_upgrades_.size(); }

  const CalibrationTable& calibration() const { return calibration_; }

  /// Snapshot of the calibration table for persistence.
  CalibrationImage ExportCalibration() const { return calibration_.Export(); }

  /// Replaces the calibration table from a snapshot image; returns the
  /// number of cells restored (counted in restored_calibration_cells).
  size_t RestoreCalibration(const CalibrationImage& image);

  // ---- Introspection ----

  const SessionConfig& config() const { return config_; }
  const SessionStats& stats() const { return stats_; }
  const PlanCacheStats& cache_stats() const { return cache_.stats(); }
  size_t PlanCacheSize() const { return cache_.size(); }
  void ClearPlanCache() { cache_.Clear(); }
  /// The shared immutable compile state (rules, trie, DimEnv) this session
  /// runs over — private to this session unless it was constructed from a
  /// caller-supplied context.
  const std::shared_ptr<const OptimizerContext>& context() const {
    return context_;
  }
  /// The attribute-dimension environment shared across this session's
  /// queries (and across every session of the same context).
  const DimEnv& dims() const { return *dims_; }
  /// The session's long-lived e-graph (null until the first reuse-path
  /// saturation). Exposed for tests and diagnostics.
  const EGraph* shared_egraph() const;
  /// Canonical ids of the query roots currently kept live in the shared
  /// graph (most recent last).
  std::vector<ClassId> live_roots() const;

  // ---- Persistence hooks (src/persist plan store) ----

  /// Observes every organic plan-cache insert (cache hits, restores, and
  /// degraded-plan skips excluded) — the WAL journaling point. The listener
  /// runs synchronously on the optimizing thread; keep it cheap.
  using PlanInsertListener =
      std::function<void(const PlanCacheKey&, const OptimizedPlan&)>;
  void set_plan_insert_listener(PlanInsertListener listener) {
    plan_insert_listener_ = std::move(listener);
  }

  /// Visits every cached plan, least-recently-used first (replaying the
  /// visits through RestorePlanCacheEntry reproduces recency exactly).
  void ExportPlanCache(
      const std::function<void(const PlanCacheKey&, const OptimizedPlan&)>& fn)
      const;

  /// Inserts a restored entry directly (no listener, no journaling, no
  /// degraded-plan filtering — the writer excluded degraded plans already).
  /// Idempotent for isomorphic duplicates, like PlanCache::Insert.
  void RestorePlanCacheEntry(const PlanCacheKey& key, OptimizedPlan plan);

  /// Copies the shared graph (catalog snapshot, signature, dense image of
  /// the live-root region) for persistence. False when no graph exists yet.
  bool ExportSharedGraph(std::string* signature, Catalog* catalog,
                         EGraphImage* image) const;

  /// Replaces the shared graph with one rebuilt from a snapshot image.
  /// Every attribute the image references must already be registered in the
  /// session's DimEnv (the restore path loads the snapshot's dims section
  /// first) — analysis and costing hard-fail on unknown attrs. Returns the
  /// number of e-classes materialized.
  size_t RestoreSharedGraph(const Catalog& catalog, std::string signature,
                            const EGraphImage& image);

 private:
  /// Everything whose lifetime is tied to one shared e-graph: the catalog
  /// snapshot its analysis reads, the graph, the persistent scheduler, and
  /// the live query roots. Saturations alias into this via shared_ptr, so a
  /// reset or Compact() never invalidates an outstanding stage result.
  struct GraphState {
    explicit GraphState(const Catalog& cat, std::string sig,
                        std::shared_ptr<DimEnv> dims, size_t num_rules,
                        const SchedulerConfig& scheduler_config);
    Catalog catalog;  ///< snapshot; the analysis context points here
    std::string signature;
    std::unique_ptr<EGraph> egraph;
    RuleScheduler scheduler;
    std::vector<ClassId> roots;  ///< recent query roots, most recent last
    /// Extraction cost cache, version-tagged per class: later queries'
    /// extractions reuse costs for every class their saturation left
    /// untouched. Lifetime-tied to `egraph` (discarded with it on
    /// reset/Compact).
    CostMemo cost_memo;
    /// Warm re-extraction anchors, by cache-key fingerprint: everything
    /// needed to re-run Extract for a cached plan against this graph
    /// without re-saturating (root class, translation, key). Classes never
    /// die within one GraphState, so anchors stay valid until the state is
    /// replaced (reset/Compact) — at which point the map dies with it and
    /// drift handling for those plans degrades to keep-the-cached-plan.
    struct ReextractInfo {
      PlanCacheKey key;
      ClassId root = kInvalidClassId;
      Translation translation;
      bool degraded = false;  ///< awaiting a background ILP upgrade
      /// Calibration version the last drift re-extraction ran under; a
      /// drifted plan is re-extracted at most once per calibration world
      /// view (re-running under unchanged multipliers reproduces the same
      /// plan — skipping it keeps persistent mispredictions from burning
      /// an extraction per execution).
      uint64_t reextracted_at_version = UINT64_MAX;
    };
    std::map<std::string, ReextractInfo> reextract;
  };

  OptimizedPlan Fallback(const ExprPtr& expr, const Status& status,
                         OptimizedPlan out);
  /// Returns the shared graph for `catalog` (whose signature the caller
  /// already computed), creating or resetting it when the signature
  /// changed, and compacting it when over the arena budget.
  GraphState& EnsureSharedGraph(const Catalog& catalog, std::string sig);
  void CompactSharedGraph();
  void RecordRoot(ClassId root);
  /// Records a warm re-extraction anchor for `key` after a successful
  /// shared-graph optimization (and queues degraded plans for upgrade).
  void RecordReextractAnchor(const PlanCacheKey& key, ClassId root,
                             const ExprPtr& la, const RaProgram& program,
                             bool degraded);
  /// Re-extracts the plan anchored by `info` against the warm shared graph
  /// (no saturation by construction) and replaces the cache entry. Fires
  /// the plan-insert listener so the WAL journals the replacement.
  bool ReextractAndReplace(const std::string& fingerprint,
                           const GraphState::ReextractInfo& info,
                           std::optional<ExtractionStrategy> force_strategy);

  /// Shared immutable compile state (rules, trie, DimEnv); everything below
  /// is this session's private mutable state.
  std::shared_ptr<const OptimizerContext> context_;
  SessionConfig config_;
  std::shared_ptr<DimEnv> dims_;  ///< == context_->dims()
  PlanCache cache_;
  SessionStats stats_;
  std::shared_ptr<GraphState> graph_;  ///< null until first reuse saturation
  uint64_t saturation_count_ = 0;  ///< per-query saturation seed offset
  PlanInsertListener plan_insert_listener_;
  /// Learned cost multipliers (config_.calibration knobs). Extraction and
  /// term costing read it; RecordExecution writes it.
  CalibrationTable calibration_;
  /// Fingerprints of degraded plans awaiting a background ILP upgrade
  /// (validated against graph_->reextract when popped).
  std::deque<std::string> pending_upgrades_;
};

}  // namespace spores
