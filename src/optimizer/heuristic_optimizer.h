// Rule-based baseline optimizer reproducing SystemML's hand-coded
// sum-product rewrites and their heuristics (Fig 14 / Sec 3). Two levels:
//   kBase — SystemML opt level 1: no advanced rewrites (identity here).
//   kOpt2 — SystemML opt level 2: syntactic rewrites with heuristic guards
//           (e.g. SumMatrixMult fires only when the product is not a shared
//           subexpression — the exact conservatism that costs PNMF its
//           speedup, Sec 4.2), plus operator fusion.
// This is the `base` / `opt2` comparator of Figures 15-17.
#pragma once

#include "src/ir/expr.h"

namespace spores {

enum class OptLevel { kBase, kOpt2 };

/// Heuristic (SystemML-like) optimizer for LA expression DAGs.
class HeuristicOptimizer {
 public:
  explicit HeuristicOptimizer(OptLevel level) : level_(level) {}

  ExprPtr Optimize(const ExprPtr& expr, const Catalog& catalog) const;

 private:
  OptLevel level_;
};

}  // namespace spores
