#include "src/optimizer/heuristic_optimizer.h"

#include <cmath>

#include "src/rules/rules_fusion.h"
#include "src/util/check.h"

namespace spores {

namespace {

// Occurrences of `target` (structurally) within `root`. SystemML's rewrites
// guard on common subexpressions this way (Sec 4.2: "only applies the rule
// when WH does not appear elsewhere").
size_t CountOccurrences(const ExprPtr& root, const ExprPtr& target) {
  size_t n = ExprEquals(root, target) ? 1 : 0;
  for (const ExprPtr& c : root->children) n += CountOccurrences(c, target);
  return n;
}

bool IsConst(const ExprPtr& e, double v) {
  return e->op == Op::kConst && e->value == v;
}

bool IsScalarShaped(const ExprPtr& e, const Catalog& catalog) {
  StatusOr<Shape> s = InferShape(e, catalog);
  return s.ok() && s.value().IsScalar();
}

bool IsColVector(const ExprPtr& e, const Catalog& catalog) {
  StatusOr<Shape> s = InferShape(e, catalog);
  return s.ok() && s.value().cols == 1 && s.value().rows > 1;
}

bool IsRowVector(const ExprPtr& e, const Catalog& catalog) {
  StatusOr<Shape> s = InferShape(e, catalog);
  return s.ok() && s.value().rows == 1 && s.value().cols > 1;
}

class Rewriter {
 public:
  Rewriter(const Catalog& catalog, ExprPtr root)
      : catalog_(catalog), root_(std::move(root)) {}

  ExprPtr Run() {
    ExprPtr current = root_;
    // Fixpoint with a small iteration cap (SystemML performs a fixed number
    // of rewrite sweeps).
    for (int pass = 0; pass < 8; ++pass) {
      root_ = current;
      ExprPtr next = RewriteTree(current);
      if (ExprEquals(next, current)) break;
      current = next;
    }
    return ApplyFusion(current);
  }

 private:
  ExprPtr RewriteTree(const ExprPtr& e) {
    std::vector<ExprPtr> children;
    children.reserve(e->children.size());
    bool changed = false;
    for (const ExprPtr& c : e->children) {
      ExprPtr r = RewriteTree(c);
      changed |= (r != c);
      children.push_back(std::move(r));
    }
    ExprPtr node = changed ? Expr::Make(e->op, e->sym, e->value, e->attrs,
                                        std::move(children))
                           : e;
    return RewriteNode(node);
  }

  ExprPtr RewriteNode(const ExprPtr& e) {
    const auto& ch = e->children;
    switch (e->op) {
      case Op::kElemMul: {
        // UnnecessaryBinaryOperation: X*1 -> X; X*0 -> 0-matrix (scalar 0
        // here); BinaryToUnaryOperation: X*X -> X^2.
        if (IsConst(ch[0], 1.0)) return ch[1];
        if (IsConst(ch[1], 1.0)) return ch[0];
        if (ExprEquals(ch[0], ch[1])) return Expr::Pow(ch[0], 2.0);
        // Constant folding.
        if (ch[0]->op == Op::kConst && ch[1]->op == Op::kConst) {
          return Expr::Const(ch[0]->value * ch[1]->value);
        }
        break;
      }
      case Op::kElemPlus: {
        if (IsConst(ch[0], 0.0)) return ch[1];
        if (IsConst(ch[1], 0.0)) return ch[0];
        if (ExprEquals(ch[0], ch[1])) {
          return Expr::Mul(Expr::Const(2.0), ch[0]);
        }
        if (ch[0]->op == Op::kConst && ch[1]->op == Op::kConst) {
          return Expr::Const(ch[0]->value + ch[1]->value);
        }
        break;
      }
      case Op::kElemMinus: {
        if (IsConst(ch[1], 0.0)) return ch[0];
        if (ch[0]->op == Op::kConst && ch[1]->op == Op::kConst) {
          return Expr::Const(ch[0]->value - ch[1]->value);
        }
        break;
      }
      case Op::kElemDiv: {
        if (IsConst(ch[1], 1.0)) return ch[0];
        if (ch[0]->op == Op::kConst && ch[1]->op == Op::kConst &&
            ch[1]->value != 0.0) {
          return Expr::Const(ch[0]->value / ch[1]->value);
        }
        break;
      }
      case Op::kNeg: {
        // UnnecessaryMinus: -(-X) -> X.
        if (ch[0]->op == Op::kNeg) return ch[0]->children[0];
        if (ch[0]->op == Op::kConst) return Expr::Const(-ch[0]->value);
        break;
      }
      case Op::kTranspose: {
        // UnnecessaryReorgOperation: t(t(X)) -> X.
        if (ch[0]->op == Op::kTranspose) return ch[0]->children[0];
        // TransposeAggBinBinaryChains: t(t(A) %*% t(B)) -> B %*% A.
        if (ch[0]->op == Op::kMatMul &&
            ch[0]->children[0]->op == Op::kTranspose &&
            ch[0]->children[1]->op == Op::kTranspose) {
          return Expr::MatMul(ch[0]->children[1]->children[0],
                              ch[0]->children[0]->children[0]);
        }
        break;
      }
      case Op::kColAgg: {
        // pushdownUnaryAggTransposeOp: colSums(t(X)) -> t(rowSums(X)).
        if (ch[0]->op == Op::kTranspose) {
          return Expr::Transpose(Expr::RowSums(ch[0]->children[0]));
        }
        // ColSumsMVMult: colSums(X*Y) -> t(Y) %*% X if Y col vector.
        if (ch[0]->op == Op::kElemMul) {
          const ExprPtr& x = ch[0]->children[0];
          const ExprPtr& y = ch[0]->children[1];
          if (IsColVector(y, catalog_) && !IsColVector(x, catalog_)) {
            return Expr::MatMul(Expr::Transpose(y), x);
          }
          if (IsColVector(x, catalog_) && !IsColVector(y, catalog_)) {
            return Expr::MatMul(Expr::Transpose(x), y);
          }
        }
        break;
      }
      case Op::kRowAgg: {
        if (ch[0]->op == Op::kTranspose) {
          return Expr::Transpose(Expr::ColSums(ch[0]->children[0]));
        }
        // RowSumsMVMult: rowSums(X*Y) -> X %*% t(Y) if Y row vector.
        if (ch[0]->op == Op::kElemMul) {
          const ExprPtr& x = ch[0]->children[0];
          const ExprPtr& y = ch[0]->children[1];
          if (IsRowVector(y, catalog_) && !IsRowVector(x, catalog_)) {
            return Expr::MatMul(x, Expr::Transpose(y));
          }
          if (IsRowVector(x, catalog_) && !IsRowVector(y, catalog_)) {
            return Expr::MatMul(y, Expr::Transpose(x));
          }
        }
        break;
      }
      case Op::kSumAgg: {
        // UnaryAggReorgOperation: sum(t(X)) -> sum(X).
        if (ch[0]->op == Op::kTranspose) {
          return Expr::Sum(ch[0]->children[0]);
        }
        // UnnecessaryAggregates: sum(rowSums(X)) -> sum(X).
        if (ch[0]->op == Op::kRowAgg || ch[0]->op == Op::kColAgg) {
          return Expr::Sum(ch[0]->children[0]);
        }
        // pushdownSumOnAdd: sum(A+B) -> sum(A) + sum(B).
        if (ch[0]->op == Op::kElemPlus) {
          return Expr::Plus(Expr::Sum(ch[0]->children[0]),
                            Expr::Sum(ch[0]->children[1]));
        }
        // pushdownSumBinaryMult: sum(c*X) -> c*sum(X), scalar c.
        if (ch[0]->op == Op::kElemMul &&
            IsScalarShaped(ch[0]->children[0], catalog_)) {
          return Expr::Mul(ch[0]->children[0], Expr::Sum(ch[0]->children[1]));
        }
        if (ch[0]->op == Op::kElemMul &&
            IsScalarShaped(ch[0]->children[1], catalog_)) {
          return Expr::Mul(ch[0]->children[1], Expr::Sum(ch[0]->children[0]));
        }
        // DotProductSum: sum(v^2) -> t(v) %*% v for column vectors.
        if (ch[0]->op == Op::kPow && ch[0]->children[1]->op == Op::kConst &&
            ch[0]->children[1]->value == 2.0 &&
            IsColVector(ch[0]->children[0], catalog_)) {
          return Expr::MatMul(Expr::Transpose(ch[0]->children[0]),
                              ch[0]->children[0]);
        }
        // SumMatrixMult: sum(A%*%B) -> sum(t(colSums(A)) * rowSums(B)),
        // guarded: not a dot product, and — the CSE heuristic — only when
        // the product is not shared elsewhere in the DAG (Sec 4.2; this is
        // exactly why SystemML misses the PNMF rewrite).
        if (ch[0]->op == Op::kMatMul) {
          const ExprPtr& a = ch[0]->children[0];
          const ExprPtr& b = ch[0]->children[1];
          bool dot = IsRowVector(a, catalog_) && IsColVector(b, catalog_);
          if (!dot && CountOccurrences(root_, ch[0]) <= 1) {
            return Expr::Sum(Expr::Mul(Expr::Transpose(Expr::ColSums(a)),
                                       Expr::RowSums(b)));
          }
        }
        break;
      }
      default:
        break;
    }
    return e;
  }

  const Catalog& catalog_;
  ExprPtr root_;
};

}  // namespace

ExprPtr HeuristicOptimizer::Optimize(const ExprPtr& expr,
                                     const Catalog& catalog) const {
  if (level_ == OptLevel::kBase) return expr;
  Rewriter rewriter(catalog, expr);
  return rewriter.Run();
}

}  // namespace spores
