#include "src/optimizer/optimizer_session.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

#include "src/rules/rules_fusion.h"
#include "src/util/timer.h"

namespace spores {

namespace {

// Model cost of a whole RA term, charged node-by-node against the e-graph's
// class data (every node of the term is present in the graph it was added
// to). For reporting only.
double TermCost(const EGraph& egraph, const CostModel& cost,
                const ExprPtr& ra) {
  double total = 0.0;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    for (const ExprPtr& c : e->children) walk(c);
    std::vector<ClassId> child_ids;
    child_ids.reserve(e->children.size());
    bool ok = true;
    for (const ExprPtr& c : e->children) {
      std::optional<ClassId> cid = egraph.LookupExpr(c);
      if (!cid) { ok = false; break; }
      child_ids.push_back(*cid);
    }
    if (!ok) return;
    ENode node = EGraph::ExprToENode(*e, std::move(child_ids));
    total += cost.NodeCost(egraph, node);
  };
  walk(ra);
  return total;
}

}  // namespace

std::string SessionStats::ToString() const {
  std::ostringstream os;
  os << queries << " queries: " << cache_hits << " cache hits, "
     << cache_misses << " misses, " << saturations << " saturations ("
     << graph_reuses << " on warm graph, " << graph_resets << " resets, "
     << compactions << " compactions, arena peak " << arena_high_water
     << "), " << fallbacks << " fallbacks, " << compile_seconds
     << "s compile";
  if (restored_plans || restored_classes) {
    os << "; restored " << restored_plans << " plans, " << restored_classes
       << " classes";
  }
  if (recalibrations || drift_invalidations || re_extractions ||
      plan_upgrades || restored_calibration_cells) {
    os << "; feedback: " << recalibrations << " recalibrations, "
       << drift_invalidations << " drift invalidations, " << re_extractions
       << " re-extractions, " << plan_upgrades << " upgrades";
    if (restored_calibration_cells) {
      os << ", " << restored_calibration_cells << " restored cells";
    }
  }
  return os.str();
}

OptimizerSession::GraphState::GraphState(
    const Catalog& cat, std::string sig, std::shared_ptr<DimEnv> dims,
    size_t num_rules, const SchedulerConfig& scheduler_config)
    : catalog(cat),
      signature(std::move(sig)),
      scheduler(num_rules, scheduler_config) {
  // The analysis context must point at *this state's* catalog snapshot:
  // callers' catalogs are per-call temporaries.
  egraph = std::make_unique<EGraph>(
      std::make_unique<RaAnalysis>(RaContext{&catalog, std::move(dims)}));
}

OptimizerSession::OptimizerSession(SessionConfig config)
    : OptimizerSession(
          std::make_shared<const OptimizerContext>(std::move(config))) {}

OptimizerSession::OptimizerSession(
    std::shared_ptr<const OptimizerContext> context,
    std::optional<SessionConfig> config)
    : context_(std::move(context)),
      config_(config ? std::move(*config) : context_->base_config()),
      dims_(context_->dims()),
      cache_(config_.enable_plan_cache ? config_.plan_cache_capacity : 0),
      calibration_(config_.calibration) {}

const EGraph* OptimizerSession::shared_egraph() const {
  return graph_ ? graph_->egraph.get() : nullptr;
}

std::vector<ClassId> OptimizerSession::live_roots() const {
  if (!graph_) return {};
  std::vector<ClassId> out;
  out.reserve(graph_->roots.size());
  for (ClassId r : graph_->roots) out.push_back(graph_->egraph->Find(r));
  return out;
}

void OptimizerSession::ExportPlanCache(
    const std::function<void(const PlanCacheKey&, const OptimizedPlan&)>& fn)
    const {
  cache_.ForEach([&fn](const std::string& fingerprint, const Polyterm& canon,
                       const OptimizedPlan& plan) {
    PlanCacheKey key;
    key.fingerprint = fingerprint;
    key.canon = canon;
    fn(key, plan);
  });
}

void OptimizerSession::RestorePlanCacheEntry(const PlanCacheKey& key,
                                             OptimizedPlan plan) {
  cache_.Insert(key, std::move(plan));
  ++stats_.restored_plans;
}

bool OptimizerSession::ExportSharedGraph(std::string* signature,
                                         Catalog* catalog,
                                         EGraphImage* image) const {
  if (!graph_ || graph_->roots.empty()) return false;
  *signature = graph_->signature;
  *catalog = graph_->catalog;
  *image = ExtractEGraphImage(*graph_->egraph, graph_->roots);
  return true;
}

size_t OptimizerSession::RestoreSharedGraph(const Catalog& catalog,
                                            std::string signature,
                                            const EGraphImage& image) {
  graph_ = std::make_shared<GraphState>(catalog, std::move(signature), dims_,
                                        context_->rules().size(),
                                        config_.runner.scheduler);
  std::vector<ClassId> mapped = BuildEGraphFromImage(image, *graph_->egraph);
  for (ClassId r : mapped) {
    if (r != kInvalidClassId) graph_->roots.push_back(r);
  }
  const size_t classes = graph_->egraph->NumClasses();
  stats_.restored_classes += classes;
  return classes;
}

StatusOr<Translation> OptimizerSession::Translate(const ExprPtr& la,
                                                  const Catalog& catalog) {
  Timer timer;
  Translation t;
  t.la = la;
  SPORES_ASSIGN_OR_RETURN(t.program, TranslateLaToRa(la, catalog, dims_));
  t.seconds = timer.Seconds();
  return t;
}

OptimizerSession::GraphState& OptimizerSession::EnsureSharedGraph(
    const Catalog& catalog, std::string sig) {
  if (!graph_ || graph_->signature != sig) {
    if (graph_) ++stats_.graph_resets;
    graph_ = std::make_shared<GraphState>(catalog, std::move(sig), dims_,
                                          context_->rules().size(),
                                          config_.runner.scheduler);
  } else if (graph_->egraph->ArenaSize() > config_.egraph_node_budget &&
             !graph_->roots.empty()) {
    CompactSharedGraph();
  }
  return *graph_;
}

void OptimizerSession::CompactSharedGraph() {
  GraphState& old = *graph_;
  auto fresh = std::make_shared<GraphState>(old.catalog, old.signature, dims_,
                                            context_->rules().size(),
                                            config_.runner.scheduler);
  std::vector<ClassId> mapped =
      old.egraph->CompactInto(*fresh->egraph, old.roots);
  for (ClassId r : mapped) {
    if (r != kInvalidClassId) fresh->roots.push_back(r);
  }
  // The fresh scheduler's search floors are zero: rules re-match the whole
  // compacted graph once, then turn incremental again.
  graph_ = std::move(fresh);
  ++stats_.compactions;
}

void OptimizerSession::RecordRoot(ClassId root) {
  GraphState& g = *graph_;
  // Re-canonicalize (saturation merges move roots), dedup, keep the most
  // recent max_live_roots.
  std::vector<ClassId> canon;
  canon.reserve(g.roots.size() + 1);
  for (ClassId r : g.roots) canon.push_back(g.egraph->Find(r));
  canon.push_back(g.egraph->Find(root));
  std::vector<ClassId> kept;
  for (auto it = canon.rbegin();
       it != canon.rend() && kept.size() < config_.max_live_roots; ++it) {
    if (std::find(kept.begin(), kept.end(), *it) == kept.end()) {
      kept.push_back(*it);
    }
  }
  std::reverse(kept.begin(), kept.end());
  g.roots = std::move(kept);
}

StatusOr<Saturation> OptimizerSession::Saturate(const Translation& t,
                                                const Catalog& catalog,
                                                bool preserve_shared_graph,
                                                const StageBudget& budget) {
  if (!t.program.ra) {
    return Status::InvalidArgument("Saturate: empty translation");
  }
  Timer timer;
  Saturation s;
  // Keep per-query saturation deterministic but decorrelated: the first
  // query reproduces the configured seed exactly, later ones offset it.
  RunnerConfig runner_config = config_.runner;
  runner_config.seed = config_.runner.seed + saturation_count_++;
  runner_config.cancel = budget.cancel;
  if (budget.deadline.has_deadline()) {
    // Saturation gets its configured budget or its share of what remains of
    // the query's deadline, whichever is smaller — the reserved remainder
    // keeps extraction and lowering inside the deadline too.
    double remaining = std::max(budget.deadline.RemainingSeconds(), 0.0);
    double derived = remaining * config_.saturate_deadline_fraction;
    if (derived < runner_config.timeout_seconds) {
      runner_config.timeout_seconds = derived;
      s.deadline_clamped = true;
    }
  }

  bool use_shared = config_.reuse_egraph;
  std::string sig;
  if (use_shared) {
    sig = CatalogSignature(catalog);
    if (preserve_shared_graph && (!graph_ || graph_->signature != sig)) {
      // A foreign catalog would reset the shared graph; this call was asked
      // to leave it warm, so it saturates on a throwaway graph instead.
      use_shared = false;
    }
  }
  if (use_shared) {
    GraphState& g = EnsureSharedGraph(catalog, std::move(sig));
    bool warm = g.egraph->Version() > 0;
    uint64_t version_at_entry = g.egraph->Version();
    ClassId root = g.egraph->AddExpr(t.program.ra);
    g.egraph->Rebuild();
    // On a warm graph the node budget bounds growth, not absolute size —
    // earlier queries' classes must not starve this one — and the run is
    // scoped to the current query's region so other queries' regions
    // neither consume its iteration/match budgets nor get churned further.
    runner_config.node_limit_is_growth = true;
    runner_config.scope_root = root;
    runner_config.scope_version_floor = version_at_entry + 1;
    Runner runner(g.egraph.get(), &context_->rules(), runner_config,
                  &g.scheduler, &context_->compiled_rules());
    s.report = runner.Run();
    s.root = g.egraph->Find(root);
    s.reused_graph = warm;
    if (warm) ++stats_.graph_reuses;
    RecordRoot(s.root);
    stats_.arena_high_water =
        std::max(stats_.arena_high_water, g.egraph->ArenaSize());
    // Alias the graph through the state so catalog snapshot, scheduler and
    // graph live exactly as long as any Saturation using them.
    s.egraph = std::shared_ptr<EGraph>(graph_, g.egraph.get());
  } else {
    RaContext ctx{&catalog, dims_};
    s.egraph = std::make_shared<EGraph>(std::make_unique<RaAnalysis>(ctx));
    ClassId root = s.egraph->AddExpr(t.program.ra);
    s.egraph->Rebuild();
    Runner runner(s.egraph.get(), &context_->rules(), runner_config,
                  /*scheduler=*/nullptr, &context_->compiled_rules());
    s.report = runner.Run();
    s.root = s.egraph->Find(root);
  }
  CostModel cost(RaContext{&catalog, dims_}, &calibration_);
  s.original_cost = TermCost(*s.egraph, cost, t.program.ra);
  s.seconds = timer.Seconds();
  return s;
}

StatusOr<Extraction> OptimizerSession::Extract(
    const Saturation& s, const Translation& t, const Catalog& catalog,
    const StageBudget& budget,
    std::optional<ExtractionStrategy> force_strategy) const {
  if (!s.egraph) {
    return Status::InvalidArgument("Extract: empty saturation");
  }
  Timer timer;
  RaContext ctx{&catalog, dims_};
  CostModel cost(ctx, &calibration_);
  // When extracting from the session's shared graph, reuse its persistent
  // cost memo so classes unchanged since earlier queries are never
  // re-costed; a one-off graph gets a call-local memo inside the extractor.
  CostMemo* memo =
      (graph_ && s.egraph.get() == graph_->egraph.get()) ? &graph_->cost_memo
                                                         : nullptr;

  // Deadline steering: the ILP solve is clamped to the remaining budget,
  // and skipped outright (greedy instead) when too little remains for
  // branch-and-bound to beat its own warm start. Greedy is not clamped —
  // it is the degraded path itself and completes in one bottom-up pass.
  IlpExtractConfig ilp_config = config_.ilp;
  ilp_config.cancel = budget.cancel;
  bool degrade_ilp = false;
  bool ilp_clamped = false;
  if (budget.deadline.has_deadline()) {
    double remaining = std::max(budget.deadline.RemainingSeconds(), 0.0);
    if (remaining < ilp_config.timeout_seconds) {
      ilp_config.timeout_seconds = remaining;
      ilp_clamped = true;
    }
    if (remaining < config_.ilp_min_remaining_seconds) degrade_ilp = true;
  }

  auto run_one = [&](ExtractionStrategy strategy) -> StatusOr<PlanChoice> {
    StatusOr<ExtractionResult> extracted =
        strategy == ExtractionStrategy::kIlp
            ? IlpExtract(*s.egraph, s.root, cost, ilp_config, memo)
            : GreedyExtract(*s.egraph, s.root, cost, memo);
    if (!extracted.ok()) return extracted.status();
    PlanChoice choice;
    choice.strategy = strategy;
    choice.cost = extracted.value().cost;
    choice.optimal = extracted.value().optimal;
    SPORES_ASSIGN_OR_RETURN(
        choice.la, TranslateRaToLa(extracted.value().expr, t.program, catalog));
    // Sanity: the optimized plan must keep the input's shape.
    SPORES_ASSIGN_OR_RETURN(Shape out_shape, InferShape(choice.la, catalog));
    if (!(out_shape == t.program.out_shape)) {
      return Status::Internal("optimized plan changed output shape");
    }
    return choice;
  };

  Extraction result;
  ExtractionStrategy chosen_strategy =
      force_strategy ? *force_strategy : config_.extraction;
  if (chosen_strategy == ExtractionStrategy::kIlp && degrade_ilp) {
    chosen_strategy = ExtractionStrategy::kGreedy;
    result.degraded_to_greedy = true;
  }
  SPORES_ASSIGN_OR_RETURN(result.chosen, run_one(chosen_strategy));
  // A deadline-clamped solve that then failed to prove optimality may be
  // weaker than an unconstrained run's plan — degradation provenance, so
  // it is never cached. (A full-budget non-optimal ILP is NOT degraded:
  // that is the configured budget doing its job, deterministically.)
  if (chosen_strategy == ExtractionStrategy::kIlp && ilp_clamped &&
      !result.chosen.optimal) {
    result.deadline_limited_ilp = true;
  }
  result.alternatives.push_back(result.chosen);
  // Alternatives are a luxury a degraded query can't afford: when the
  // deadline ruled ILP out (degrade_ilp), the alternative pass would be
  // that very solve — regardless of which strategy was chosen.
  if (config_.collect_alternatives && !result.degraded_to_greedy) {
    ExtractionStrategy other = chosen_strategy == ExtractionStrategy::kIlp
                                   ? ExtractionStrategy::kGreedy
                                   : ExtractionStrategy::kIlp;
    if (other == ExtractionStrategy::kIlp && degrade_ilp) {
      result.alternatives_suppressed = true;
    } else {
      StatusOr<PlanChoice> alt = run_one(other);
      if (alt.ok()) {
        // A deadline-clamped alternative ILP that failed to prove
        // optimality weakens the alternatives list the same way it would
        // weaken a chosen plan — provenance, so the result is not cached.
        if (other == ExtractionStrategy::kIlp && ilp_clamped &&
            !alt.value().optimal) {
          result.deadline_limited_ilp = true;
        }
        result.alternatives.push_back(std::move(alt).value());
      }
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

ExprPtr OptimizerSession::Fuse(const ExprPtr& la) const {
  return ApplyFusion(la);
}

OptimizedPlan OptimizerSession::Fallback(const ExprPtr& expr,
                                         const Status& status,
                                         OptimizedPlan out) {
  out.used_fallback = true;
  out.fallback_reason = status.ToString();
  if (out.original_cost <= 0.0) {
    // Translation itself failed: no model cost is available, so report a
    // structural floor (node count) — still nonzero for any real input.
    out.original_cost = static_cast<double>(expr->TreeSize());
  }
  out.plan_cost = out.original_cost;  // the fallback plan IS the input
  Timer fuse_timer;
  out.plan = config_.apply_fusion ? Fuse(expr) : expr;
  out.timings.fuse_seconds = fuse_timer.Seconds();
  ++stats_.fallbacks;
  return out;
}

OptimizedPlan OptimizerSession::Optimize(const ExprPtr& expr,
                                         const Catalog& catalog) {
  return Optimize(expr, catalog, QueryOptions{});
}

OptimizedPlan OptimizerSession::Optimize(const ExprPtr& expr,
                                         const Catalog& catalog,
                                         const QueryOptions& options) {
  ++stats_.queries;
  Timer total;
  OptimizedPlan out;
  struct StatsGuard {
    SessionStats& stats;
    Timer& total;
    ~StatsGuard() { stats.compile_seconds += total.Seconds(); }
  } guard{stats_, total};

  const bool use_cache = config_.enable_plan_cache && options.use_plan_cache;
  auto serve_hit = [&](const OptimizedPlan& cached, double translate_seconds,
                       double cache_seconds) {
    out = cached;  // plan, costs, optimality, alternatives
    out.cache_hit = true;
    out.used_fallback = false;
    out.fallback_reason.clear();
    out.timings = StageTimings{};
    out.timings.translate_seconds = translate_seconds;
    out.timings.cache_seconds = cache_seconds;
    out.saturation = RunnerReport{};  // no saturation ran
    ++stats_.cache_hits;
  };

  // ---- Precomputed-key probe ----
  // The serving path routes on the canonical form, so the key already
  // exists; probing before translation makes a warm hit pay one
  // isomorphism check and nothing else.
  Timer stage;
  if (use_cache && options.key) {
    if (const OptimizedPlan* cached = cache_.Lookup(*options.key)) {
      serve_hit(*cached, 0.0, stage.Seconds());
      return out;
    }
    ++stats_.cache_misses;
    out.timings.cache_seconds = stage.Seconds();
  }

  // ---- Translate (reusing the router's translation when provided) ----
  stage.Reset();
  StatusOr<Translation> translated = Status::Unsupported("not translated");
  if (options.translation) {
    Translation precomputed;
    precomputed.la = expr;
    precomputed.program = *options.translation;
    translated = std::move(precomputed);
  } else {
    translated = Translate(expr, catalog);
  }
  out.timings.translate_seconds =
      translated.ok() ? translated.value().seconds : stage.Seconds();
  if (!translated.ok()) {
    return Fallback(expr, translated.status(), std::move(out));
  }
  const Translation& t = translated.value();

  // ---- Plan-cache probe (no precomputed key) ----
  StatusOr<PlanCacheKey> built_key = Status::Unsupported("key not built");
  const PlanCacheKey* key = options.key;
  if (use_cache && !key && !options.translation) {
    stage.Reset();
    built_key = BuildPlanCacheKey(expr, t.program, catalog, *dims_);
    if (built_key.ok()) {
      key = &built_key.value();
      if (const OptimizedPlan* cached = cache_.Lookup(*key)) {
        serve_hit(*cached, t.seconds, stage.Seconds());
        return out;
      }
      ++stats_.cache_misses;
    } else {
      ++stats_.cache_misses;  // canonicalization bypass counts as a miss
    }
    out.timings.cache_seconds = stage.Seconds();
  } else if (use_cache && !key) {
    // Precomputed translation without a key: the caller (router) already
    // attempted canonicalization and it failed — a bypass, counted as a
    // miss, without repeating the failing walk.
    ++stats_.cache_misses;
  }

  // ---- Budget checkpoint ----
  // Past the cache probes: from here on the query does real work. A dead
  // budget (cancelled, or deadline fully expired before saturation began)
  // falls back to the input immediately — the fallback is the degenerate
  // degraded plan, produced for free.
  if (options.budget.cancel.cancelled()) {
    return Fallback(expr, Status::Cancelled("query cancelled before work"),
                    std::move(out));
  }
  if (options.budget.deadline.Expired()) {
    // This fallback IS deadline degradation (the caller gets the raw
    // input); mark it so ok()-path consumers branching on `degraded` —
    // and the latency bench's accounting — see the miss.
    out.degraded = true;
    out.degrade_reason = "deadline expired before optimization";
    return Fallback(expr,
                    Status::DeadlineExceeded("deadline expired before work"),
                    std::move(out));
  }

  // ---- Saturate ----
  stage.Reset();
  StatusOr<Saturation> saturated =
      Saturate(t, catalog, options.preserve_shared_egraph, options.budget);
  ++stats_.saturations;
  out.timings.saturate_seconds =
      saturated.ok() ? saturated.value().seconds : stage.Seconds();
  if (!saturated.ok()) {
    return Fallback(expr, saturated.status(), std::move(out));
  }
  const Saturation& s = saturated.value();
  out.saturation = s.report;
  out.original_cost = s.original_cost;
  if (s.report.stop_reason == StopReason::kCancelled) {
    // The runner exited via the token mid-saturation; nothing downstream
    // should spend budget on a result nobody wants.
    return Fallback(expr, Status::Cancelled("saturation cancelled"),
                    std::move(out));
  }
  if (s.deadline_clamped && s.report.stop_reason == StopReason::kTimeout) {
    out.degraded = true;
    out.degrade_reason = "deadline clamped saturation budget";
  }

  // ---- Extract (+ lower) ----
  stage.Reset();
  StatusOr<Extraction> extracted = Extract(s, t, catalog, options.budget);
  out.timings.extract_seconds =
      extracted.ok() ? extracted.value().seconds : stage.Seconds();
  if (!extracted.ok()) {
    return Fallback(expr, extracted.status(), std::move(out));
  }
  Extraction& e = extracted.value();
  // Cancellation inside extraction surfaces as an ok() result (the ILP
  // solver treats the token as budget exhaustion and falls back to its
  // greedy warm start) — catch it here so a cancellation-truncated plan is
  // neither returned as normal nor cached.
  if (options.budget.cancel.cancelled()) {
    return Fallback(expr, Status::Cancelled("extraction cancelled"),
                    std::move(out));
  }
  out.plan_cost = e.chosen.cost;
  out.optimal = e.chosen.optimal;
  out.alternatives = std::move(e.alternatives);
  auto add_degrade = [&out](const char* reason) {
    out.degraded = true;
    if (!out.degrade_reason.empty()) out.degrade_reason += "; ";
    out.degrade_reason += reason;
  };
  if (e.degraded_to_greedy) {
    add_degrade("deadline skipped ILP, greedy extraction");
  }
  if (e.deadline_limited_ilp) {
    add_degrade("deadline clamped ILP budget, optimality unproven");
  }
  if (e.alternatives_suppressed) {
    add_degrade("deadline suppressed alternative extraction");
  }

  // ---- Fuse ----
  stage.Reset();
  out.plan = config_.apply_fusion ? Fuse(e.chosen.la) : e.chosen.la;
  out.timings.fuse_seconds = stage.Seconds();

  if (key) out.cache_fingerprint = key->fingerprint;
  // Warm re-extraction anchor: when this optimization ran on the session's
  // shared graph, record what a later drift invalidation (or degraded-plan
  // upgrade) needs to re-run Extract without saturating.
  if (use_cache && key && graph_ && s.egraph.get() == graph_->egraph.get()) {
    RecordReextractAnchor(*key, s.root, expr, t.program, out.degraded);
  }

  // Degraded plans are deliberately not cached: the cache must only serve
  // what an unconstrained run would have produced, or one rushed query
  // would pin its weaker plan for every future isomorphic query.
  if (use_cache && key && !out.degraded) {
    cache_.Insert(*key, out);
    // Journaling hook: fires only for organic inserts (never on restore
    // replay), so the WAL records exactly what this process computed.
    if (plan_insert_listener_) plan_insert_listener_(*key, out);
  }
  return out;
}

void OptimizerSession::RecordReextractAnchor(const PlanCacheKey& key,
                                             ClassId root, const ExprPtr& la,
                                             const RaProgram& program,
                                             bool degraded) {
  GraphState& g = *graph_;
  GraphState::ReextractInfo info;
  info.key = key;
  info.root = root;
  info.translation.la = la;
  info.translation.program = program;
  info.degraded = degraded;
  g.reextract[key.fingerprint] = std::move(info);
  // Bound the anchor map to the cache capacity (degraded plans are not
  // cached but still anchored, so the map can briefly run ahead).
  while (g.reextract.size() > std::max<size_t>(1, config_.plan_cache_capacity)) {
    g.reextract.erase(g.reextract.begin());
  }
  if (degraded &&
      std::find(pending_upgrades_.begin(), pending_upgrades_.end(),
                key.fingerprint) == pending_upgrades_.end()) {
    pending_upgrades_.push_back(key.fingerprint);
    if (pending_upgrades_.size() > 32) pending_upgrades_.pop_front();
  }
}

bool OptimizerSession::ReextractAndReplace(
    const std::string& fingerprint, const GraphState::ReextractInfo& info,
    std::optional<ExtractionStrategy> force_strategy) {
  GraphState& g = *graph_;
  // Rebuild a Saturation view of the warm graph — by construction no
  // saturation runs here, which is the invariant serve_test asserts via
  // SessionStats::saturations.
  Saturation s;
  s.egraph = std::shared_ptr<EGraph>(graph_, g.egraph.get());
  s.root = g.egraph->Find(info.root);
  s.reused_graph = true;
  StatusOr<Extraction> extracted =
      Extract(s, info.translation, g.catalog, StageBudget{}, force_strategy);
  if (!extracted.ok()) return false;
  Extraction& e = extracted.value();
  OptimizedPlan out;
  out.plan = config_.apply_fusion ? Fuse(e.chosen.la) : e.chosen.la;
  out.plan_cost = e.chosen.cost;
  out.optimal = e.chosen.optimal;
  out.alternatives = std::move(e.alternatives);
  out.cache_fingerprint = fingerprint;
  CostModel cost(RaContext{&g.catalog, dims_}, &calibration_);
  out.original_cost = TermCost(*g.egraph, cost, info.translation.program.ra);
  // Erase + Insert: Insert alone would only refresh the stale entry.
  cache_.Erase(info.key);
  cache_.Insert(info.key, out);
  if (plan_insert_listener_) plan_insert_listener_(info.key, out);
  return true;
}

FeedbackResult OptimizerSession::RecordExecution(
    const ExecutionFeedback& feedback) {
  FeedbackResult result;
  if (!feedback.samples.empty()) {
    if (calibration_.Record(feedback.samples)) {
      ++stats_.recalibrations;
      result.recalibrated = true;
    }
    result.observed_cost_units =
        calibration_.ObservedCostUnits(feedback.samples);
  }
  const double threshold = config_.calibration.drift_threshold;
  if (threshold <= 1.0 || feedback.fingerprint.empty() ||
      feedback.predicted_cost <= 0.0 || result.observed_cost_units <= 0.0) {
    return result;
  }
  double ratio = result.observed_cost_units / feedback.predicted_cost;
  if (ratio <= threshold && ratio >= 1.0 / threshold) return result;
  result.drift_detected = true;
  if (!graph_) return result;
  auto it = graph_->reextract.find(feedback.fingerprint);
  if (it == graph_->reextract.end()) return result;
  GraphState::ReextractInfo& info = it->second;
  // Unchanged multipliers reproduce the same extraction — skip.
  if (info.reextracted_at_version == calibration_.version()) return result;
  ++stats_.drift_invalidations;
  if (ReextractAndReplace(feedback.fingerprint, info, std::nullopt)) {
    info.reextracted_at_version = calibration_.version();
    ++stats_.re_extractions;
    result.reextracted = true;
  }
  return result;
}

bool OptimizerSession::UpgradeOnePendingPlan() {
  while (!pending_upgrades_.empty()) {
    if (!graph_) {
      pending_upgrades_.clear();
      return false;
    }
    std::string fingerprint = std::move(pending_upgrades_.front());
    pending_upgrades_.pop_front();
    auto it = graph_->reextract.find(fingerprint);
    if (it == graph_->reextract.end() || !it->second.degraded) continue;
    if (!ReextractAndReplace(fingerprint, it->second,
                             ExtractionStrategy::kIlp)) {
      return false;
    }
    it->second.degraded = false;
    it->second.reextracted_at_version = calibration_.version();
    ++stats_.plan_upgrades;
    return true;
  }
  return false;
}

size_t OptimizerSession::RestoreCalibration(const CalibrationImage& image) {
  calibration_.Restore(image);
  stats_.restored_calibration_cells += image.cells.size();
  return image.cells.size();
}

}  // namespace spores
