#include "src/serve/session_pool.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <exception>
#include <filesystem>
#include <new>
#include <sstream>

#include "src/canon/isomorphism.h"
#include "src/cost/cost_model.h"
#include "src/util/check.h"
#include "src/util/symbol.h"

namespace spores {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

size_t PoolStats::TotalExecuted() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.executed;
  return n;
}

size_t PoolStats::TotalSteals() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.steals;
  return n;
}

size_t PoolStats::TotalExpired() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.expired;
  return n;
}

size_t PoolStats::TotalCancelled() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.cancelled;
  return n;
}

size_t PoolStats::TotalRejected() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.rejected;
  return n;
}

size_t PoolStats::TotalRestarts() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.restarts;
  return n;
}

size_t PoolStats::TotalRestoredPlans() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.restored_plans;
  return n;
}

size_t PoolStats::TotalRestoredClasses() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.restored_classes;
  return n;
}

size_t PoolStats::TotalRecalibrations() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.recalibrations;
  return n;
}

size_t PoolStats::TotalDriftInvalidations() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.drift_invalidations;
  return n;
}

size_t PoolStats::TotalReExtractions() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.re_extractions;
  return n;
}

size_t PoolStats::TotalPlanUpgrades() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.plan_upgrades;
  return n;
}

double PoolStats::CacheHitRate() const {
  size_t hits = 0, misses = 0;
  for (const ShardStats& s : shards) {
    hits += s.cache.hits;
    misses += s.cache.misses;
  }
  return hits + misses == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::string PoolStats::ToString() const {
  std::ostringstream os;
  os << shards.size() << " shards: " << submitted << " submitted ("
     << dedup_hits << " batch-deduped, " << pregroup_hits << " pre-grouped), "
     << completed << " completed, " << TotalRejected() << " rejected, "
     << TotalExpired() << " expired, " << TotalCancelled() << " cancelled, "
     << TotalSteals() << " steals, cache hit rate " << CacheHitRate();
  // Fault-containment counters appear only once something fired, so the
  // healthy-path output is unchanged.
  if (TotalRestarts() > 0 || quarantined > 0 || shed > 0) {
    os << "; containment: " << TotalRestarts() << " shard restarts, "
       << quarantined << " quarantined, " << shed << " shed";
  }
  // Feedback loop: silent until an execution was actually recorded.
  if (TotalRecalibrations() > 0 || TotalDriftInvalidations() > 0 ||
      TotalReExtractions() > 0 || TotalPlanUpgrades() > 0) {
    os << "; feedback: " << TotalRecalibrations() << " recalibrations, "
       << TotalDriftInvalidations() << " drift invalidations, "
       << TotalReExtractions() << " re-extractions, " << TotalPlanUpgrades()
       << " upgrades";
  }
  // Same deal for contention: uncontended runs print nothing new.
  if (pop_lock_contended > 0 || router_contended > 0 || intern_contended > 0 ||
      dim_write_contended > 0) {
    os << "; contention: " << pop_lock_contended << " pop-lock, "
       << router_contended << " router, " << intern_contended << " intern, "
       << dim_write_contended << " dim-write (" << park_events << " parks)";
  }
  os << "\n";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    os << "  shard " << i << ": " << s.executed << " executed (" << s.steals
       << " stolen, " << s.stolen_from << " stolen from, " << s.expired
       << " expired, " << s.cancelled << " cancelled, " << s.rejected
       << " rejected), depth " << s.queue_depth << (s.busy ? " busy" : "")
       << ", cache " << s.cache.hits << "/" << (s.cache.hits + s.cache.misses)
       << " hits, " << s.cache_entries << " entries; "
       << s.session.ToString();
    if (s.cold_start != ColdStartReason::kDisabled) {
      os << "; startup " << ColdStartReasonName(s.cold_start);
      if (s.snapshot_age_seconds >= 0) {
        os << " (snapshot age " << s.snapshot_age_seconds << "s)";
      }
    }
    if (s.restarts > 0) {
      os << "; restarts " << s.restarts << " (" << s.restart_poisoned
         << " poisoned, " << s.restart_bad_alloc << " bad_alloc, "
         << s.restart_hangs << " hangs)" << (s.poisoned ? " POISONED" : "");
    }
    os << "\n";
  }
  return os.str();
}

SessionPool::SessionPool(std::shared_ptr<const OptimizerContext> context,
                         PoolConfig config)
    : context_(std::move(context)),
      config_(std::move(config)),
      router_(config_.num_shards, context_, config_.router) {
  SPORES_CHECK_GT(config_.num_shards, 0u);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session =
        std::make_unique<OptimizerSession>(context_, config_.session);
    shards_.push_back(std::move(shard));
  }
  if (!config_.persist.dir.empty()) {
    // CheckpointManager expects the directory to exist; creating it is the
    // serving layer's job. Failure surfaces as kNoSnapshot + best-effort
    // journaling, not a crash — persistence must never stop serving.
    std::error_code ec;
    std::filesystem::create_directories(config_.persist.dir, ec);
    JournalHeader identity;
    identity.rule_set_hash = RuleSetHash(context_->rules());
    identity.cost_model_hash = CostModelParamsHash();
    identity.shard_count = static_cast<uint32_t>(config_.num_shards);
    CheckpointConfig ck;
    ck.dir = config_.persist.dir;
    ck.journal_inserts = config_.persist.journal_inserts;
    manager_ = std::make_unique<CheckpointManager>(ck, identity);
    // Restore before any worker exists: the whole load — dims, graph
    // rebuild, cache replay, router pins — runs in this single-threaded
    // window, so sessions never see concurrent restore + serve traffic.
    RestoreShards();
    if (config_.persist.journal_inserts) {
      // The WAL hook, installed AFTER restore so replayed entries are never
      // re-journaled (RestorePlanCacheEntry bypasses the listener anyway;
      // this keeps the ordering obviously right). Fires on the worker
      // thread at every organic insert.
      for (size_t i = 0; i < config_.num_shards; ++i) {
        shards_[i]->session->set_plan_insert_listener(
            [this, i](const PlanCacheKey& key, const OptimizedPlan& plan) {
              manager_->JournalInsert(i, key, plan);
            });
      }
    }
  }
  // Seed every shard's published stats mirror so Stats() has something to
  // read before the first job. Republishing is idempotent — the mirror is
  // always re-read from the session itself, so cold pools report zeros and
  // warm pools their restored counters.
  for (auto& shard : shards_) {
    PublishSnapshot(*shard);
  }
  // Workers start only after every shard exists: a thief scans all queues.
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  if (config_.supervision.enable) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

CheckpointManager::Restore SessionPool::RestoreIntoSession(
    size_t index, OptimizerSession& session) {
  SnapshotExpectation expect;
  expect.rule_set_hash = RuleSetHash(context_->rules());
  expect.cost_model_hash = CostModelParamsHash();
  expect.shard_count = static_cast<uint32_t>(config_.num_shards);
  CheckpointManager::Restore r = manager_->RestoreShard(index, expect);
  if (r.reason != ColdStartReason::kWarmRestore) return r;
  // Dims first: analysis and costing hard-fail on unknown attributes, so
  // the graph rebuild and any later costing need every persisted
  // (attr, dim) registered. DimEnv is write-once-monotone and the values
  // were read from this very env last run, so re-registering live
  // attributes is a no-op.
  for (const auto& dim : r.data.dims) {
    context_->dims()->Set(Symbol::Intern(dim.first), dim.second);
  }
  if (r.data.has_graph) {
    session.RestoreSharedGraph(r.data.catalog,
                               std::move(r.data.catalog_signature),
                               r.data.graph);
  }
  // Learned costs come back before any plan replay or new extraction: a
  // warm shard resumes costing exactly where the snapshot left off.
  if (r.data.calibration.version > 0 || !r.data.calibration.cells.empty()) {
    session.RestoreCalibration(r.data.calibration);
  }
  // Snapshot entries are LRU-first with journal entries after them, so
  // replaying in order reproduces the cache's recency order (and thus
  // its eviction behavior) exactly. Each class is re-pinned to this
  // shard — a restored plan the router routes elsewhere is a cache entry
  // nobody ever hits. (On a mid-serve rebuild the pin is a no-op for
  // classes already live-routed; RestorePin lets existing pins win.)
  auto replay = [&](std::vector<PlanStoreEntry>& entries) {
    for (PlanStoreEntry& e : entries) {
      router_.RestorePin(e.key.fingerprint, index);
      session.RestorePlanCacheEntry(e.key, std::move(e.plan));
    }
  };
  replay(r.data.entries);
  replay(r.journal_entries);
  return r;
}

void SessionPool::RestoreShards() {
  const int64_t now = static_cast<int64_t>(std::time(nullptr));
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    CheckpointManager::Restore r = RestoreIntoSession(i, *shard.session);
    shard.cold_start = r.reason;
    shard.cold_start_detail = std::move(r.detail);
    if (r.reason != ColdStartReason::kWarmRestore) continue;
    if (r.created_unix_seconds > 0) {
      shard.snapshot_age_seconds =
          std::max<int64_t>(0, now - r.created_unix_seconds);
    }
    // Publish restore counters so Stats() reflects the warm state before
    // the first job snapshots them organically.
    PublishSnapshot(shard);
  }
}

SessionPool::~SessionPool() {
  Drain();  // every future is completed before teardown
  if (manager_ && config_.persist.checkpoint_on_shutdown) {
    // Workers are idle but still alive, so the capture tasks have threads
    // to run on. The result is advisory at shutdown: the journals still
    // hold anything a failed snapshot write would have covered.
    Status st = Checkpoint();
    (void)st;
  }
  // Stop the watchdog before the workers: a dying watchdog must never fire
  // a cancel into a worker that is mid-teardown.
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Drain() proved every pushed job was popped; this defensive sweep only
  // matters if that invariant is ever broken, and keeps the intrusive
  // queue from leaking in that case.
  for (auto& shard : shards_) {
    while (MpscNode* node = shard->queue.PopHighestPriority()) {
      delete static_cast<Job*>(node);
    }
  }
}

const std::vector<size_t>& SessionPool::QueueDepths() const {
  // Lock-free snapshot of the HotMirror depths: router bias is a
  // heuristic, so a slightly stale depth is fine, and the submit hot path
  // must neither contend with the workers nor heap-allocate per
  // submission (the buffer is reused per thread).
  static thread_local std::vector<size_t> depths;
  depths.assign(shards_.size(), 0);
  for (size_t i = 0; i < shards_.size(); ++i) {
    depths[i] = shards_[i]->hot.depth.load(std::memory_order_relaxed);
  }
  return depths;
}

void SessionPool::WakeWorkers() {
  work_epoch_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker handshake with WorkerLoop: it registers in parked_ BEFORE
  // re-checking the epoch. In the seq_cst total order either our bump
  // precedes its re-check (it sees new work and never sleeps) or its
  // registration precedes our load here (we see parked_ > 0 and wake it).
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  // Empty lock/unlock before notify: a worker between its predicate check
  // and the actual block holds park_mu_, so acquiring it here means every
  // registered sleeper is either fully blocked (notify reaches it) or has
  // not yet evaluated the predicate (it will see the bumped epoch).
  { std::lock_guard<std::mutex> lock(park_mu_); }
  park_cv_.notify_all();
}

SessionPool::Future SessionPool::Enqueue(std::unique_ptr<Job> job) {
  Future future = Future::Make();
  job->state = future.state_;
  Shard& home = *shards_[job->home_shard];
  // Poison-query quarantine: a canonical form that has crashed or hung
  // shards `strikes` times is turned away before it can take down another
  // worker — checked ahead of depth/age admission so a poison query never
  // consumes an admission slot either.
  if (config_.quarantine.strikes > 0 &&
      QuarantineRejects(QuarantineHash(*job))) {
    home.rejected.fetch_add(1, std::memory_order_relaxed);
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    future.state_->Complete(Status::FailedPrecondition(
        "quarantined: this query repeatedly crashed or hung optimizer "
        "shards"));
    return future;
  }
  // Memory-pressure shedding: while the pool-wide e-graph arena (lock-free
  // sum of per-shard node mirrors) is over the configured ceiling, the
  // cheap-to-retry low-priority tail is rejected up front so high-priority
  // traffic keeps a session to run on.
  if (config_.admission.shed_arena_nodes > 0 &&
      job->priority >= kPriorityLow) {
    size_t arena_total = 0;
    for (const auto& s : shards_) {
      arena_total += s->hot.arena_nodes.load(std::memory_order_relaxed);
    }
    if (arena_total > config_.admission.shed_arena_nodes) {
      home.rejected.fetch_add(1, std::memory_order_relaxed);
      shed_.fetch_add(1, std::memory_order_relaxed);
      future.state_->Complete(Status::ResourceExhausted(
          "shed: pool e-graph memory over threshold, low-priority work "
          "rejected"));
      return future;
    }
  }
  // Admission control, lock-free off the HotMirror: a queue at its depth
  // bound, or stalled past the backlog threshold, is not draining — a new
  // arrival would only wait to expire. Reject it now, while the caller
  // can still shed load or retry elsewhere, instead of after it has
  // burned its deadline in line. The reads are racy by a handful of
  // nanoseconds against concurrent pops/pushes; admission thresholds are
  // load-shedding heuristics and tolerate that by design.
  const AdmissionConfig& adm = config_.admission;
  const size_t depth = home.hot.depth.load(std::memory_order_acquire);
  bool rejected =
      (adm.max_queue_depth > 0 && depth >= adm.max_queue_depth);
  if (!rejected && adm.max_queue_age_seconds > 0 && depth > 0) {
    // Stall signal: how long the CURRENT backlog has sat with no dequeue.
    // The clock starts at the later of (last pop, queue became non-empty):
    // a recent pop means the pile is moving; a recently-refilled queue
    // hasn't been waiting yet. Immune to one starved low-priority waiter
    // aging while the queue drains fine (that bumps last_pop_ns).
    const int64_t moving_since =
        std::max(home.hot.last_pop_ns.load(std::memory_order_relaxed),
                 home.hot.nonempty_since_ns.load(std::memory_order_relaxed));
    const double stalled_for =
        static_cast<double>(NowNanos() - moving_since) * 1e-9;
    rejected = stalled_for > adm.max_queue_age_seconds;
  }
  if (rejected) {
    home.rejected.fetch_add(1, std::memory_order_relaxed);
    future.state_->Complete(Status::ResourceExhausted(
        "admission: shard queue over depth/age threshold"));
    return future;
  }
  // Count the job submitted BEFORE it becomes visible in the queue: a
  // worker popping and completing it instantly must never drive
  // completed_ past submitted_ under Drain()'s predicate.
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  // Depth up BEFORE the push: a consumer that sees the node also sees
  // depth > 0, so its post-pop fetch_sub can never underflow; and depth==0
  // remains a proof of emptiness (see HotMirror::depth).
  if (home.hot.depth.fetch_add(1, std::memory_order_acq_rel) == 0) {
    home.hot.nonempty_since_ns.store(NowNanos(), std::memory_order_relaxed);
  }
  const int priority = job->priority;
  home.queue.Push(job.release(), priority);
  WakeWorkers();
  return future;
}

SessionPool::Future SessionPool::SubmitAsync(const ServeRequest& request) {
  SPORES_CHECK(request.expr != nullptr);
  SPORES_CHECK(request.catalog != nullptr);
  RouteDecision route =
      config_.enable_load_bias
          ? router_.Route(request.expr, *request.catalog, QueueDepths())
          : router_.Route(request.expr, *request.catalog);
  auto job = std::make_unique<Job>();
  job->expr = request.expr;
  job->catalog = request.catalog;
  job->home_shard = route.shard;
  job->priority = request.priority;
  job->deadline = request.deadline;
  if (route.key.ok()) job->key = std::move(route.key).value();
  if (route.program.ok()) job->translation = std::move(route.program).value();
  return Enqueue(std::move(job));
}

SessionPool::Future SessionPool::Submit(
    ExprPtr expr, std::shared_ptr<const Catalog> catalog) {
  ServeRequest request;
  request.expr = std::move(expr);
  request.catalog = std::move(catalog);
  return SubmitAsync(request);
}

SessionPool::Future SessionPool::AttachMember(const Future& job_future) {
  Future member = Future::MakeAttached(job_future.state_);
  job_future.state_->cancel_votes_needed.fetch_add(1,
                                                   std::memory_order_release);
  auto member_state = member.state_;
  job_future.then([member_state](const Future::Result& r) {
    member_state->Complete(r);
  });
  return member;
}

std::vector<SessionPool::Future> SessionPool::BatchSubmit(
    const std::vector<ServeRequest>& batch) {
  std::vector<Future> futures(batch.size());
  // Two-level dedupe, grouped BEFORE any job is enqueued so the shared job
  // honors every member's contract (pass 2 merges deadlines/priorities).
  // Level 1 pre-groups by structural hash (verified with deep equality):
  // an exact resubmission joins its twin before routing, so it skips the
  // translate/canonicalize cost entirely — the common shape of repeated
  // traffic. Level 2 is the canonical-form test the plan cache runs
  // (exact fingerprint bucket, isomorphism within): it catches
  // differently-written equivalents that level 1 cannot. Every member
  // holds a member handle onto the group's job — so one member's Cancel()
  // only casts a vote, never destroying a result other members wait for,
  // and a rejection is shared by the whole group.
  struct Group {
    RouteDecision route;  ///< by-products of the first routed member
    std::vector<size_t> members;
  };
  /// Structural index: one entry per ROUTED member (group representatives
  /// and canon-joiners alike), so any later structural twin pre-groups.
  struct StructEntry {
    uint64_t hash;
    const Catalog* catalog;
    ExprPtr expr;
    size_t group;
  };
  std::vector<Group> groups;
  std::vector<StructEntry> structs;
  size_t dedup_hits = 0, pregroup_hits = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServeRequest& req = batch[i];
    SPORES_CHECK(req.expr != nullptr);
    SPORES_CHECK(req.catalog != nullptr);
    uint64_t structural_hash = req.expr->Hash();
    size_t group = groups.size();  // sentinel: not joined yet
    for (const StructEntry& e : structs) {
      if (e.hash == structural_hash && e.catalog == req.catalog.get() &&
          ExprEquals(e.expr, req.expr)) {
        group = e.group;
        ++pregroup_hits;
        break;
      }
    }
    if (group == groups.size()) {
      RouteDecision route =
          config_.enable_load_bias
              ? router_.Route(req.expr, *req.catalog, QueueDepths())
              : router_.Route(req.expr, *req.catalog);
      if (route.key.ok()) {
        const PlanCacheKey& key = route.key.value();
        for (size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].route.key.ok() &&
              groups[g].route.key.value().fingerprint == key.fingerprint &&
              PolytermIsomorphic(groups[g].route.key.value().canon,
                                 key.canon)) {
            group = g;  // ride the representative's optimization
            ++dedup_hits;
            break;
          }
        }
      }
      if (group == groups.size()) {
        groups.push_back(Group{std::move(route), {}});
      }
      structs.push_back(
          StructEntry{structural_hash, req.catalog.get(), req.expr, group});
    }
    groups[group].members.push_back(i);
  }
  // Pass 2: one job per group, under the LOOSEST contract across its
  // members — best (lowest) priority, latest deadline (none if any member
  // has none) — so no member can fail with a kDeadlineExceeded, or starve
  // at a priority, it never asked for. Dedupe may only ever give a member
  // a better service level than its own request, not a worse one.
  for (const Group& g : groups) {
    const ServeRequest& rep = batch[g.members.front()];
    int priority = rep.priority;
    Deadline deadline = rep.deadline;
    for (size_t m : g.members) {
      const ServeRequest& req = batch[m];
      priority = std::min(priority, req.priority);
      if (!req.deadline.has_deadline() || !deadline.has_deadline()) {
        deadline = Deadline();
      } else if (req.deadline.RemainingSeconds() >
                 deadline.RemainingSeconds()) {
        deadline = req.deadline;
      }
    }
    auto job = std::make_unique<Job>();
    job->expr = rep.expr;
    job->catalog = rep.catalog;
    job->home_shard = g.route.shard;
    job->priority = priority;
    job->deadline = deadline;
    if (g.route.key.ok()) job->key = g.route.key.value();
    if (g.route.program.ok()) job->translation = g.route.program.value();
    Future job_future = Enqueue(std::move(job));
    for (size_t m : g.members) futures[m] = AttachMember(job_future);
  }
  if (pregroup_hits > 0) {
    pregroup_hits_.fetch_add(pregroup_hits, std::memory_order_relaxed);
  }
  if (dedup_hits > 0) {
    dedup_hits_.fetch_add(dedup_hits, std::memory_order_relaxed);
  }
  return futures;
}

PoolStats SessionPool::Stats() const {
  // Lock-free, weakly consistent (contract in session_pool.h): relaxed
  // counter reads plus the worker-published session/cache mirror.
  PoolStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.busy = shard->busy.load(std::memory_order_relaxed);
    s.poisoned = shard->poisoned.load(std::memory_order_relaxed);
    s.executed = shard->executed.load(std::memory_order_relaxed);
    s.steals = shard->steals.load(std::memory_order_relaxed);
    s.stolen_from = shard->stolen_from.load(std::memory_order_relaxed);
    s.expired = shard->expired.load(std::memory_order_relaxed);
    s.cancelled = shard->cancelled.load(std::memory_order_relaxed);
    s.rejected = shard->rejected.load(std::memory_order_relaxed);
    s.queue_depth = shard->hot.depth.load(std::memory_order_relaxed);
    s.pop_lock_contended = shard->pop_lock.contended();
    const SessionSnapshot& snap = shard->snapshot;
    s.session.queries = snap.queries.load(std::memory_order_relaxed);
    s.session.cache_hits = snap.cache_hits.load(std::memory_order_relaxed);
    s.session.cache_misses =
        snap.cache_misses.load(std::memory_order_relaxed);
    s.session.fallbacks = snap.fallbacks.load(std::memory_order_relaxed);
    s.session.saturations = snap.saturations.load(std::memory_order_relaxed);
    s.session.graph_reuses =
        snap.graph_reuses.load(std::memory_order_relaxed);
    s.session.graph_resets =
        snap.graph_resets.load(std::memory_order_relaxed);
    s.session.compactions = snap.compactions.load(std::memory_order_relaxed);
    s.session.arena_high_water =
        snap.arena_high_water.load(std::memory_order_relaxed);
    s.session.restored_plans =
        snap.restored_plans.load(std::memory_order_relaxed);
    s.session.restored_classes =
        snap.restored_classes.load(std::memory_order_relaxed);
    s.session.recalibrations =
        snap.recalibrations.load(std::memory_order_relaxed);
    s.session.drift_invalidations =
        snap.drift_invalidations.load(std::memory_order_relaxed);
    s.session.re_extractions =
        snap.re_extractions.load(std::memory_order_relaxed);
    s.session.plan_upgrades =
        snap.plan_upgrades.load(std::memory_order_relaxed);
    s.session.restored_calibration_cells =
        snap.restored_calibration_cells.load(std::memory_order_relaxed);
    s.session.compile_seconds =
        snap.compile_seconds.load(std::memory_order_relaxed);
    s.cache.hits = snap.cache_lookups_hit.load(std::memory_order_relaxed);
    s.cache.misses = snap.cache_lookups_miss.load(std::memory_order_relaxed);
    s.cache.insertions =
        snap.cache_insertions.load(std::memory_order_relaxed);
    s.cache.evictions = snap.cache_evictions.load(std::memory_order_relaxed);
    s.cache_entries = snap.cache_entries.load(std::memory_order_relaxed);
    // Written once before the workers spawned; immutable since.
    s.cold_start = shard->cold_start;
    s.cold_start_detail = shard->cold_start_detail;
    s.snapshot_age_seconds = shard->snapshot_age_seconds;
    s.restarts = shard->restarts.load(std::memory_order_relaxed);
    s.restart_poisoned =
        shard->restart_poisoned.load(std::memory_order_relaxed);
    s.restart_bad_alloc =
        shard->restart_bad_alloc.load(std::memory_order_relaxed);
    s.restart_hangs = shard->restart_hangs.load(std::memory_order_relaxed);
    out.pop_lock_contended += s.pop_lock_contended;
    out.shards.push_back(std::move(s));
  }
  out.quarantined = quarantined_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  // completed before submitted: submitted only grows and every completion
  // was counted as submitted first, so this read order guarantees the
  // documented completed <= submitted invariant.
  out.completed = completed_.load(std::memory_order_acquire);
  out.submitted = submitted_.load(std::memory_order_acquire);
  out.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  out.pregroup_hits = pregroup_hits_.load(std::memory_order_relaxed);
  out.park_events = park_events_.load(std::memory_order_relaxed);
  out.router_contended = router_.ContendedAcquisitions();
  out.intern_contended = Symbol::InternContended();
  out.dim_write_contended = context_->dims()->WriteContended();
  return out;
}

void SessionPool::RecordExecution(ExecutionFeedback feedback) {
  // The owner of the plan-cache entry — pin when the router still has one,
  // stable hash home otherwise — must process this record: drift handling
  // erases/replaces an entry only that shard's cache can hold. A record
  // whose pin was FIFO-evicted still calibrates the hash-home shard; its
  // drift lookup just misses (the anchor lives where the pin pointed).
  const size_t shard_index =
      router_.PinnedShardOrHash(feedback.fingerprint) % shards_.size();
  Shard& shard = *shards_[shard_index];
  // Count it into the drain accounting BEFORE it becomes visible, exactly
  // like a job enqueue: Drain() then waits for pending feedback, so a
  // caller can submit feedback, Drain(), and read calibrated Stats().
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(shard.feedback_mu);
    shard.feedback.push_back(std::move(feedback));
    shard.has_feedback.store(true, std::memory_order_release);
  }
  WakeWorkers();
}

void SessionPool::DrainFeedback(size_t self) {
  Shard& shard = *shards_[self];
  if (!shard.has_feedback.load(std::memory_order_acquire)) return;
  while (true) {
    ExecutionFeedback fb;
    {
      std::lock_guard<std::mutex> lock(shard.feedback_mu);
      if (shard.feedback.empty()) {
        shard.has_feedback.store(false, std::memory_order_relaxed);
        return;
      }
      fb = std::move(shard.feedback.front());
      shard.feedback.pop_front();
    }
    try {
      shard.session->RecordExecution(fb);
    } catch (const std::exception&) {
      // Feedback is advisory: a re-extraction that runs out of memory (or
      // hits an injected fault) must not take the worker down — the cached
      // plan it would have replaced is still correct, just stale.
    }
    PublishSnapshot(shard);
    FinishJob();
  }
}

void SessionPool::Drain() {
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) ==
             submitted_.load(std::memory_order_acquire);
    });
  }
  // A drained pool's journaled state is on disk, not in a stdio buffer:
  // callers use Drain() as the quiesce point before copying/inspecting the
  // persistence directory.
  if (manager_) manager_->FlushJournals();
}

Status SessionPool::Checkpoint() {
  if (!manager_) {
    return Status::Unsupported("persistence not configured (persist.dir)");
  }
  // One checkpoint at a time: the per-shard control slot holds one task.
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  return manager_->CheckpointAll(
      [this](size_t shard) -> std::optional<ShardSnapshotData> {
        ShardSnapshotData data;
        WithShardSession(shard, [&](OptimizerSession& session) {
          // Rotating at the same serialization point as the copy makes the
          // rotated journal cover exactly the inserts the copy includes —
          // no insert is in both the snapshot and a surviving journal, and
          // none is in neither.
          manager_->RotateJournal(shard);
          session.ExportPlanCache(
              [&](const PlanCacheKey& key, const OptimizedPlan& plan) {
                data.entries.push_back(PlanStoreEntry{key, plan});
              });
          data.has_graph = session.ExportSharedGraph(
              &data.catalog_signature, &data.catalog, &data.graph);
          data.calibration = session.ExportCalibration();
        });
        // Dim collection reads the internally-synchronized shared DimEnv
        // against our own copy — it can run here on the checkpoint thread,
        // keeping the worker pause to the copy itself.
        CollectShardDims(*context_->dims(), &data);
        return data;
      },
      static_cast<int64_t>(std::time(nullptr)));
}

void SessionPool::WithShardSession(
    size_t index, const std::function<void(OptimizerSession&)>& fn) {
  Shard& shard = *shards_[index];
  struct Signal {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto sig = std::make_shared<Signal>();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    SPORES_CHECK(!shard.control);  // checkpoint_mu_ admits one at a time
    shard.control = [&fn, sig, &shard] {
      fn(*shard.session);
      std::lock_guard<std::mutex> done_lock(sig->mu);
      sig->done = true;
      sig->cv.notify_all();
    };
    shard.has_control.store(true, std::memory_order_release);
  }
  // Wake a parked worker to find the task — the same missed-wakeup-free
  // epoch protocol enqueues use. A busy worker picks it up at the top of
  // its next loop iteration, after the current job.
  WakeWorkers();
  std::unique_lock<std::mutex> wait_lock(sig->mu);
  sig->cv.wait(wait_lock, [&] { return sig->done; });
}

void SessionPool::RunControl(size_t self) {
  Shard& shard = *shards_[self];
  // Hot path: one relaxed-ish load. The mutex is touched only when a
  // control task actually exists (checkpoints — rare).
  if (!shard.has_control.load(std::memory_order_acquire)) return;
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    task.swap(shard.control);
    shard.has_control.store(false, std::memory_order_relaxed);
  }
  if (task) task();
}

std::unique_ptr<SessionPool::Job> SessionPool::NextJob(size_t self,
                                                       bool* stolen,
                                                       bool* retry_soon) {
  *stolen = false;
  *retry_soon = false;
  Shard& own = *shards_[self];
  // Own queue first. depth == 0 proves emptiness (it is incremented before
  // every push), so the guard lock is skipped entirely on an idle shard.
  if (own.hot.depth.load(std::memory_order_acquire) > 0) {
    own.pop_lock.lock();  // owner blocks (briefly): thieves bounce instead
    MpscNode* node = own.queue.PopHighestPriority();
    if (node != nullptr) {
      own.hot.depth.fetch_sub(1, std::memory_order_acq_rel);
      own.hot.last_pop_ns.store(NowNanos(), std::memory_order_relaxed);
    }
    own.pop_lock.unlock();
    if (node != nullptr) {
      return std::unique_ptr<Job>(static_cast<Job*>(node));
    }
    // depth > 0 but nothing popped: a push is in flight (its depth bump
    // lands before the node does — see Enqueue), or a thief emptied the
    // queue between our depth read and the lock. The producer's epoch
    // bump follows its push, so parking is safe; the timed park below is
    // belt and braces against pathological preemption mid-push.
    *retry_soon = true;
  }
  if (!config_.enable_work_stealing || shards_.size() == 1) return nullptr;
  // A queue is stealable when it holds two or more jobs — or exactly one
  // whose home worker has already been busy on its current optimization
  // longer than lone_steal_busy_seconds: the strict depth>=2 floor (PR 4)
  // protects cache warming under light load, but a lone job queued behind
  // a long saturation would otherwise wait that saturation out with an
  // idle worker watching. A lone job whose home worker is NOT yet over the
  // threshold sets *retry_soon so the caller parks with a timeout and
  // re-checks, instead of sleeping until the next enqueue.
  auto lone_stealable = [&](const Shard& victim, bool* pending) {
    if (config_.lone_steal_busy_seconds < 0) return false;
    // Acquire on busy pairs with RunJob's release store, so the timestamp
    // read below is the one published for the CURRENT job — a relaxed pair
    // could see busy==true with a stale (or zero) busy_since_ns and treat
    // a just-started worker as busy for an epoch.
    if (!victim.busy.load(std::memory_order_acquire)) return false;
    double busy_for =
        static_cast<double>(NowNanos() -
                            victim.busy_since_ns.load(
                                std::memory_order_relaxed)) *
        1e-9;
    if (busy_for > config_.lone_steal_busy_seconds) return true;
    *pending = true;
    return false;
  };
  // Pick the most backlogged stealable queue. Depths come from the
  // lock-free mirrors, so the argmax can be stale — the attempt loop
  // below re-verifies under the victim's consumer guard and falls back to
  // any stealable queue.
  size_t best = self, best_depth = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == self) continue;
    Shard& victim = *shards_[i];
    size_t depth = victim.hot.depth.load(std::memory_order_relaxed);
    // A poisoned shard's worker is busy rebuilding its session — its queue
    // drains to peers at ANY depth until the rebuild clears the flag.
    bool stealable =
        depth >= 2 ||
        (depth >= 1 && victim.poisoned.load(std::memory_order_acquire)) ||
        (depth == 1 && lone_stealable(victim, retry_soon));
    if (stealable && depth > best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  if (best == self) return nullptr;
  for (size_t attempt = 0; attempt < shards_.size(); ++attempt) {
    size_t victim_index =
        attempt == 0 ? best : (self + attempt) % shards_.size();
    if (victim_index == self) continue;
    Shard& victim = *shards_[victim_index];
    // The bounded fallback lock, confined to the steal path: try_lock only
    // — a victim mid-dequeue (or another thief) makes us bounce to the
    // next candidate, never wait. The owner's own pops stay unconstested
    // one-CAS acquisitions whenever no thief is active.
    if (!victim.pop_lock.try_lock()) continue;
    bool ignored = false;
    const size_t depth = victim.hot.depth.load(std::memory_order_acquire);
    bool stealable =
        depth >= 2 ||
        (depth >= 1 && victim.poisoned.load(std::memory_order_acquire)) ||
        (depth == 1 && lone_stealable(victim, &ignored));
    MpscNode* node = nullptr;
    if (stealable) {
      node = victim.queue.PopHighestPriority();
      if (node != nullptr) {
        victim.hot.depth.fetch_sub(1, std::memory_order_acq_rel);
        victim.hot.last_pop_ns.store(NowNanos(), std::memory_order_relaxed);
        victim.stolen_from.fetch_add(1, std::memory_order_relaxed);
      }
    }
    victim.pop_lock.unlock();
    if (node != nullptr) {
      *stolen = true;
      return std::unique_ptr<Job>(static_cast<Job*>(node));
    }
  }
  return nullptr;
}

void SessionPool::FinishJob() {
  const size_t done = completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Only the completion that reaches the quiescent point pays the mutex;
  // every other completion is one atomic increment. The empty lock/unlock
  // pairs with Drain()'s predicate evaluation under done_mu_ (same
  // lock-before-notify reasoning as WakeWorkers).
  if (done == submitted_.load(std::memory_order_acquire)) {
    { std::lock_guard<std::mutex> lock(done_mu_); }
    done_cv_.notify_all();
  }
}

void SessionPool::DisposeJob(size_t self, Job& job, Status status) {
  Shard& shard = *shards_[self];
  bool expired = status.code() == StatusCode::kDeadlineExceeded;
  job.state->Complete(Future::Result(std::move(status)));
  if (expired) {
    shard.expired.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  FinishJob();
}

void SessionPool::PublishSnapshot(Shard& shard) {
  // Field-wise relaxed republish (single writer: the owning worker, or the
  // constructor before workers spawn). Stats() reads each field tear-free;
  // cross-field skew is within the documented weak-consistency contract.
  const SessionStats st = shard.session->stats();
  const PlanCacheStats cs = shard.session->cache_stats();
  SessionSnapshot& snap = shard.snapshot;
  snap.queries.store(st.queries, std::memory_order_relaxed);
  snap.cache_hits.store(st.cache_hits, std::memory_order_relaxed);
  snap.cache_misses.store(st.cache_misses, std::memory_order_relaxed);
  snap.fallbacks.store(st.fallbacks, std::memory_order_relaxed);
  snap.saturations.store(st.saturations, std::memory_order_relaxed);
  snap.graph_reuses.store(st.graph_reuses, std::memory_order_relaxed);
  snap.graph_resets.store(st.graph_resets, std::memory_order_relaxed);
  snap.compactions.store(st.compactions, std::memory_order_relaxed);
  snap.arena_high_water.store(st.arena_high_water, std::memory_order_relaxed);
  snap.restored_plans.store(st.restored_plans, std::memory_order_relaxed);
  snap.restored_classes.store(st.restored_classes, std::memory_order_relaxed);
  snap.recalibrations.store(st.recalibrations, std::memory_order_relaxed);
  snap.drift_invalidations.store(st.drift_invalidations,
                                 std::memory_order_relaxed);
  snap.re_extractions.store(st.re_extractions, std::memory_order_relaxed);
  snap.plan_upgrades.store(st.plan_upgrades, std::memory_order_relaxed);
  snap.restored_calibration_cells.store(st.restored_calibration_cells,
                                        std::memory_order_relaxed);
  snap.compile_seconds.store(st.compile_seconds, std::memory_order_relaxed);
  snap.cache_lookups_hit.store(cs.hits, std::memory_order_relaxed);
  snap.cache_lookups_miss.store(cs.misses, std::memory_order_relaxed);
  snap.cache_insertions.store(cs.insertions, std::memory_order_relaxed);
  snap.cache_evictions.store(cs.evictions, std::memory_order_relaxed);
  snap.cache_entries.store(shard.session->PlanCacheSize(),
                           std::memory_order_relaxed);
  const EGraph* graph = shard.session->shared_egraph();
  shard.hot.arena_nodes.store(graph ? graph->NumNodes() : 0,
                              std::memory_order_relaxed);
}

void SessionPool::RunJob(size_t self, Job& job, bool stolen) {
  Shard& shard = *shards_[self];
  const bool supervised = config_.supervision.enable;
  const uint64_t qhash =
      (supervised || config_.quarantine.strikes > 0) ? QuarantineHash(job) : 0;
  QueryOptions options;
  // A stolen job bypasses the thief's plan cache entirely: the router
  // assigned its canonical form to another shard, and a shard's cache must
  // only ever hold keys routed to it (the isolation serve_test pins down).
  // It likewise must not reset the thief's warm shared e-graph when it
  // carries a foreign catalog — that graph serves the shard's own traffic.
  options.use_plan_cache = !stolen;
  options.preserve_shared_egraph = stolen;
  options.key = job.key ? &*job.key : nullptr;
  options.translation = job.translation ? &*job.translation : nullptr;
  // The job's remaining deadline and its future's cancel token ride into
  // every stage: saturation clamps its runner timeout, extraction clamps or
  // skips ILP, and Cancel() stops in-flight work at the next checkpoint.
  options.budget.deadline = job.deadline;
  options.budget.cancel = job.state->cancel;
  // Publish the timestamp BEFORE the busy flag (release/acquire pair with
  // lone_stealable): a thief that sees busy==true must also see this job's
  // start time, not the previous job's.
  const int64_t started_ns = NowNanos();
  shard.busy_since_ns.store(started_ns, std::memory_order_relaxed);
  shard.busy.store(true, std::memory_order_release);
  if (supervised) {
    // Register for the watchdog: the hang threshold is a multiple of the
    // job's own remaining budget (a job allowed 100ms that is still running
    // at 300ms is stuck — the deadline machinery inside the session should
    // have stopped it long ago), with a fixed default for deadline-less
    // jobs.
    Shard::RunningJob run;
    run.state = job.state;
    run.started_ns = started_ns;
    run.quarantine_hash = qhash;
    run.hang_seconds =
        job.deadline.has_deadline()
            ? std::max(0.01, config_.supervision.hang_grace *
                                 job.deadline.RemainingSeconds())
            : config_.supervision.default_hang_seconds;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.running = std::move(run);
  }
  // An exception escaping the worker body would std::terminate the whole
  // process and strand every waiter (including deduped batch members), so
  // it is converted to a kInternal result — errors are values on this API —
  // and the accounting below still runs so Drain() and the destructor stay
  // live. Under supervision an escape additionally poisons the session:
  // the e-graph/cache were mid-mutation when the stack unwound, so the
  // shard is rebuilt in place before it runs anything else.
  Future::Result result = Status::Internal("unset");
  std::optional<RestartCause> poison;
  try {
    OptimizedPlan plan =
        shard.session->Optimize(job.expr, *job.catalog, options);
    if (job.state->cancel_requested.load(std::memory_order_relaxed)) {
      // Cancelled mid-run: the runner/solver stopped via the token (or the
      // plan raced completion). The caller asked for no result; a plan
      // computed under a cancelled budget is reported as cancelled.
      result = Status::Cancelled("cancelled during optimization");
    } else {
      result = std::move(plan);
    }
  } catch (const std::bad_alloc&) {
    result = Status::ResourceExhausted(
        "optimization ran out of memory; shed load or retry");
    if (supervised) poison = RestartCause::kBadAlloc;
  } catch (const std::exception& e) {
    result = Status::Internal(std::string("optimization threw: ") + e.what());
    if (supervised) poison = RestartCause::kPoisoned;
  } catch (...) {
    result = Status::Internal("optimization threw a non-standard exception");
    if (supervised) poison = RestartCause::kPoisoned;
  }
  shard.busy.store(false, std::memory_order_release);
  if (supervised) {
    bool hang_flagged = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.running) hang_flagged = shard.running->hang_flagged;
      shard.running.reset();
    }
    if (hang_flagged) {
      // The watchdog force-stopped this job via its cancel token. Whatever
      // Optimize returned was computed under a budget the caller never
      // granted; the session's state was mid-flight when yanked. Hang is
      // the cause even if the unwind also threw.
      result = Status::DeadlineExceeded(
          "watchdog: optimization exceeded its hang threshold");
      poison = RestartCause::kHang;
    }
  }
  if (poison) {
    // Mark poisoned BEFORE completing the future and wake the peers, so
    // the queue behind this shard starts draining elsewhere while the
    // rebuild (possibly a full warm restore) runs here.
    shard.poisoned.store(true, std::memory_order_release);
    QuarantineStrike(qhash);
    WakeWorkers();
  }
  job.state->Complete(std::move(result));
  if (poison) RebuildShard(self, *poison);
  shard.executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) shard.steals.fetch_add(1, std::memory_order_relaxed);
  PublishSnapshot(shard);
  FinishJob();
}

void SessionPool::RebuildShard(size_t self, RestartCause cause) {
  Shard& shard = *shards_[self];
  // Build and warm-restore the replacement session before swapping it in.
  // This runs on the shard's own worker thread between jobs — the only
  // thread allowed to touch the session — while peers steal the queue
  // (poisoned shards are stealable at any depth). The poisoned session is
  // only ever destroyed here, never used again.
  std::unique_ptr<OptimizerSession> fresh;
  try {
    fresh = std::make_unique<OptimizerSession>(context_, config_.session);
    if (manager_) RestoreIntoSession(self, *fresh);
  } catch (const std::exception&) {
    // The warm restore itself failed (allocation pressure, injected fault,
    // corrupt snapshot racing a checkpoint): fall back to a plain cold
    // session — a cold shard that serves beats a warm one that crashed.
    fresh = std::make_unique<OptimizerSession>(context_, config_.session);
  }
  if (manager_ && config_.persist.journal_inserts) {
    fresh->set_plan_insert_listener(
        [this, self](const PlanCacheKey& key, const OptimizedPlan& plan) {
          manager_->JournalInsert(self, key, plan);
        });
  }
  // The swap itself needs no lock: only this worker thread ever touches
  // the session (Stats() reads the published snapshot, not the session).
  shard.session = std::move(fresh);
  shard.restarts.fetch_add(1, std::memory_order_relaxed);
  switch (cause) {
    case RestartCause::kPoisoned:
      shard.restart_poisoned.fetch_add(1, std::memory_order_relaxed);
      break;
    case RestartCause::kBadAlloc:
      shard.restart_bad_alloc.fetch_add(1, std::memory_order_relaxed);
      break;
    case RestartCause::kHang:
      shard.restart_hangs.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  PublishSnapshot(shard);
  shard.poisoned.store(false, std::memory_order_release);
}

uint64_t SessionPool::QuarantineHash(const Job& job) {
  // Canonical fingerprint when routing produced one (catches rewritten
  // equivalents of a poison query), structural hash otherwise — still
  // deterministic for exact resubmissions of non-canonicalizable input.
  return job.key ? ShardRouter::HashBytes(job.key->fingerprint)
                 : job.expr->Hash();
}

bool SessionPool::QuarantineRejects(uint64_t hash) {
  const int64_t ttl_ns =
      static_cast<int64_t>(config_.quarantine.ttl_seconds * 1e9);
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto it = quarantine_.find(hash);
  if (it == quarantine_.end()) return false;
  if (NowNanos() - it->second.last_strike_ns > ttl_ns) {
    // Strikes expired: forgive. (Its FIFO slot stays; eviction tolerates
    // already-erased entries.)
    quarantine_.erase(it);
    return false;
  }
  return it->second.strikes >= config_.quarantine.strikes;
}

void SessionPool::QuarantineStrike(uint64_t hash) {
  if (config_.quarantine.strikes == 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto it = quarantine_.find(hash);
  if (it == quarantine_.end()) {
    // Bounded record: at capacity the oldest offender is forgotten first
    // (entries the TTL already erased just fall through).
    while (quarantine_.size() >= config_.quarantine.capacity &&
           !quarantine_order_.empty()) {
      quarantine_.erase(quarantine_order_.front());
      quarantine_order_.pop_front();
    }
    it = quarantine_.emplace(hash, QuarantineEntry{}).first;
    quarantine_order_.push_back(hash);
  }
  ++it->second.strikes;
  it->second.last_strike_ns = NowNanos();
}

void SessionPool::WatchdogLoop() {
  const auto poll = std::chrono::duration<double>(
      std::max(0.001, config_.supervision.poll_seconds));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    const int64_t now = NowNanos();
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::shared_ptr<FutureState> to_cancel;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.running && !shard.running->hang_flagged) {
          const double busy_for =
              static_cast<double>(now - shard.running->started_ns) * 1e-9;
          if (busy_for > shard.running->hang_seconds) {
            shard.running->hang_flagged = true;
            to_cancel = shard.running->state;
          }
        }
      }
      // Fire the cancel token OUTSIDE the shard lock. This is deliberately
      // the raw token, not RequestCancelJob(): the caller didn't cancel,
      // the watchdog did — RunJob maps the flagged completion to
      // kDeadlineExceeded (+ rebuild), not kCancelled. Saturation and the
      // ILP solver observe the token at their next budget checkpoint and
      // unwind cooperatively; a site that never polls again is the
      // worker's loss, but the queue has already drained to peers.
      if (to_cancel) to_cancel->cancel.RequestCancel();
    }
  }
}

void SessionPool::WorkerLoop(size_t self) {
  // Lone-job re-check cadence: half the busy threshold, floored so a tiny
  // threshold cannot turn parking into a spin. Also the retry cadence for
  // an observed in-flight push.
  const double lone_retry_seconds =
      std::max(0.005, config_.lone_steal_busy_seconds / 2.0);
  while (true) {
    // Epoch read BEFORE the scan: any push that lands after this read
    // bumps the epoch, so the park below falls straight through. seq_cst
    // pairs with WakeWorkers (see its Dekker comment).
    const uint64_t seen = work_epoch_.load(std::memory_order_seq_cst);
    // A pending control task (checkpoint capture) runs between jobs on
    // this thread — the only thread allowed to touch the session. So does
    // pending execution feedback (calibration + drift re-extraction).
    RunControl(self);
    DrainFeedback(self);
    bool stolen = false, retry_soon = false;
    std::unique_ptr<Job> job = NextJob(self, &stolen, &retry_soon);
    if (job) {
      // Dequeue-time short-circuits: a cancelled or already-expired job
      // never enters Optimize — the whole point of admission + deadlines
      // is not spending saturation budget on work nobody is waiting for.
      if (job->state->cancel_requested.load(std::memory_order_relaxed)) {
        DisposeJob(self, *job, Status::Cancelled("cancelled before dequeue"));
      } else if (job->deadline.Expired()) {
        DisposeJob(self, *job,
                   Status::DeadlineExceeded("deadline expired in queue"));
      } else {
        RunJob(self, *job, stolen);
      }
      continue;
    }
    // Shallow-queue background upgrade: with no job runnable anywhere and
    // our own queue empty, spend the lull turning one deadline-degraded
    // cached plan into a full ILP extraction against the warm graph. One
    // upgrade per loop iteration: an enqueue racing the upgrade bumped the
    // epoch read above, so the very next iteration sees the real job —
    // queued traffic always outranks background polish.
    if (config_.upgrade_when_shallow) {
      Shard& own = *shards_[self];
      if (own.hot.depth.load(std::memory_order_acquire) == 0 &&
          own.session->PendingUpgrades() > 0) {
        bool upgraded = false;
        try {
          upgraded = own.session->UpgradeOnePendingPlan();
        } catch (const std::exception&) {
          // Background polish must never take a worker down; the degraded
          // plan it would have replaced is still correct.
        }
        PublishSnapshot(own);
        if (upgraded) continue;
      }
    }
    // Nothing runnable: park until an enqueue bumps the epoch. Register
    // as parked FIRST, then re-check the epoch — the other half of the
    // WakeWorkers handshake. A bump that raced the scan is caught here
    // without ever touching the mutex.
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (work_epoch_.load(std::memory_order_seq_cst) != seen) {
      parked_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    park_events_.fetch_add(1, std::memory_order_relaxed);
    bool stop = false;
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      auto wake = [&] {
        return shutdown_ ||
               work_epoch_.load(std::memory_order_relaxed) != seen;
      };
      if (retry_soon) {
        // A lone-job steal pending its busy threshold, or an in-flight
        // push: time out and re-check instead of waiting for an enqueue.
        park_cv_.wait_for(
            lock, std::chrono::duration<double>(lone_retry_seconds), wake);
      } else {
        park_cv_.wait(lock, wake);
      }
      stop = shutdown_;
    }
    parked_.fetch_sub(1, std::memory_order_relaxed);
    if (stop) break;  // the destructor drained the queues already
  }
}

}  // namespace spores
