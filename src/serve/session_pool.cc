#include "src/serve/session_pool.h"

#include <algorithm>
#include <sstream>

#include "src/canon/isomorphism.h"
#include "src/util/check.h"

namespace spores {

size_t PoolStats::TotalExecuted() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.executed;
  return n;
}

size_t PoolStats::TotalSteals() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.steals;
  return n;
}

double PoolStats::CacheHitRate() const {
  size_t hits = 0, misses = 0;
  for (const ShardStats& s : shards) {
    hits += s.cache.hits;
    misses += s.cache.misses;
  }
  return hits + misses == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::string PoolStats::ToString() const {
  std::ostringstream os;
  os << shards.size() << " shards: " << submitted << " submitted ("
     << dedup_hits << " batch-deduped), " << completed << " completed, "
     << TotalSteals() << " steals, cache hit rate " << CacheHitRate() << "\n";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    os << "  shard " << i << ": " << s.executed << " executed (" << s.steals
       << " stolen, " << s.stolen_from << " stolen from), depth "
       << s.queue_depth << ", cache " << s.cache.hits << "/"
       << (s.cache.hits + s.cache.misses) << " hits, " << s.cache_entries
       << " entries; " << s.session.ToString() << "\n";
  }
  return os.str();
}

SessionPool::SessionPool(std::shared_ptr<const OptimizerContext> context,
                         PoolConfig config)
    : context_(std::move(context)),
      config_(std::move(config)),
      router_(config_.num_shards, context_) {
  SPORES_CHECK_GT(config_.num_shards, 0u);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session =
        std::make_unique<OptimizerSession>(context_, config_.session);
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard exists: a thief scans all queues.
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

SessionPool::~SessionPool() {
  Drain();  // every promise is fulfilled before teardown
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::shared_future<OptimizedPlan> SessionPool::Enqueue(
    std::unique_ptr<Job> job) {
  std::shared_future<OptimizedPlan> future =
      job->promise.get_future().share();
  Shard& home = *shards_[job->home_shard];
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ++submitted_;
  }
  {
    std::lock_guard<std::mutex> lock(home.mu);
    home.queue.push_back(std::move(job));
  }
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    ++work_epoch_;
  }
  park_cv_.notify_all();
  return future;
}

std::shared_future<OptimizedPlan> SessionPool::Submit(
    ExprPtr expr, std::shared_ptr<const Catalog> catalog) {
  SPORES_CHECK(expr != nullptr);
  SPORES_CHECK(catalog != nullptr);
  RouteDecision route = router_.Route(expr, *catalog);
  auto job = std::make_unique<Job>();
  job->expr = std::move(expr);
  job->catalog = std::move(catalog);
  job->home_shard = route.shard;
  if (route.key.ok()) job->key = std::move(route.key).value();
  if (route.program.ok()) job->translation = std::move(route.program).value();
  return Enqueue(std::move(job));
}

std::vector<std::shared_future<OptimizedPlan>> SessionPool::BatchSubmit(
    const std::vector<ServeRequest>& batch) {
  std::vector<std::shared_future<OptimizedPlan>> futures(batch.size());
  // Dedupe groups: representative jobs keyed by exact fingerprint, with
  // isomorphism deciding membership inside a fingerprint bucket — the same
  // two-level test the plan cache runs. Only canonicalizable queries
  // dedupe; a bypass query cannot prove equivalence to anything.
  struct Group {
    std::string fingerprint;
    Polyterm canon;
    std::shared_future<OptimizedPlan> future;
  };
  std::vector<Group> groups;
  size_t dedup_hits = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServeRequest& req = batch[i];
    SPORES_CHECK(req.expr != nullptr);
    SPORES_CHECK(req.catalog != nullptr);
    RouteDecision route = router_.Route(req.expr, *req.catalog);
    if (route.key.ok()) {
      const PlanCacheKey& key = route.key.value();
      bool joined = false;
      for (const Group& g : groups) {
        if (g.fingerprint == key.fingerprint &&
            PolytermIsomorphic(g.canon, key.canon)) {
          futures[i] = g.future;  // ride the representative's optimization
          ++dedup_hits;
          joined = true;
          break;
        }
      }
      if (joined) continue;
    }
    auto job = std::make_unique<Job>();
    job->expr = req.expr;
    job->catalog = req.catalog;
    job->home_shard = route.shard;
    if (route.key.ok()) job->key = route.key.value();
    if (route.program.ok()) {
      job->translation = std::move(route.program).value();
    }
    if (route.key.ok()) {
      groups.push_back(Group{job->key->fingerprint, job->key->canon,
                             std::shared_future<OptimizedPlan>()});
    }
    futures[i] = Enqueue(std::move(job));
    if (route.key.ok()) groups.back().future = futures[i];
  }
  if (dedup_hits > 0) {
    std::lock_guard<std::mutex> lock(done_mu_);
    dedup_hits_ += dedup_hits;
  }
  return futures;
}

PoolStats SessionPool::Stats() const {
  PoolStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    std::lock_guard<std::mutex> lock(shard->mu);
    s.executed = shard->executed;
    s.steals = shard->steals;
    s.stolen_from = shard->stolen_from;
    s.queue_depth = shard->queue.size();
    s.session = shard->session_stats;
    s.cache = shard->cache_stats;
    s.cache_entries = shard->cache_entries;
    out.shards.push_back(std::move(s));
  }
  std::lock_guard<std::mutex> lock(done_mu_);
  out.submitted = submitted_;
  out.completed = completed_;
  out.dedup_hits = dedup_hits_;
  return out;
}

void SessionPool::Drain() {
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return completed_ == submitted_; });
}

std::unique_ptr<SessionPool::Job> SessionPool::NextJob(size_t self,
                                                       bool* stolen) {
  *stolen = false;
  Shard& own = *shards_[self];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      auto job = std::move(own.queue.front());
      own.queue.pop_front();
      return job;
    }
  }
  if (!config_.enable_work_stealing || shards_.size() == 1) return nullptr;
  // Steal the oldest job of the most backlogged other queue — but only
  // from queues holding two or more: a lone queued job is left to its home
  // worker. Stealing it wins nothing when that worker is idle and about to
  // pop it (every enqueue wakes all parked workers, so thieves would
  // routinely race the home worker), and a stolen job bypasses the thief's
  // plan cache — under light load indiscriminate stealing would starve the
  // very cache warming the router exists to provide. Sizes are sampled one
  // lock at a time (never two shard locks at once), so the argmax can be
  // stale — fall back to any stealable queue.
  size_t best = self, best_depth = 1;  // floor 1: only depth >= 2 steals
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == self) continue;
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    if (shards_[i]->queue.size() > best_depth) {
      best = i;
      best_depth = shards_[i]->queue.size();
    }
  }
  if (best == self) return nullptr;
  for (size_t attempt = 0; attempt < shards_.size(); ++attempt) {
    size_t victim_index =
        attempt == 0 ? best : (self + attempt) % shards_.size();
    if (victim_index == self) continue;
    Shard& victim = *shards_[victim_index];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.queue.size() >= 2) {
      auto job = std::move(victim.queue.front());
      victim.queue.pop_front();
      ++victim.stolen_from;
      *stolen = true;
      return job;
    }
  }
  return nullptr;
}

void SessionPool::RunJob(size_t self, Job& job, bool stolen) {
  Shard& shard = *shards_[self];
  QueryOptions options;
  // A stolen job bypasses the thief's plan cache entirely: the router
  // assigned its canonical form to another shard, and a shard's cache must
  // only ever hold keys routed to it (the isolation serve_test pins down).
  // It likewise must not reset the thief's warm shared e-graph when it
  // carries a foreign catalog — that graph serves the shard's own traffic.
  options.use_plan_cache = !stolen;
  options.preserve_shared_egraph = stolen;
  options.key = job.key ? &*job.key : nullptr;
  options.translation = job.translation ? &*job.translation : nullptr;
  // An exception escaping the worker body would std::terminate the whole
  // process and strand every waiter (including deduped batch members), so
  // it is forwarded through the promise instead — where a single-session
  // caller would have caught it — and the accounting below still runs so
  // Drain() and the destructor stay live.
  try {
    OptimizedPlan plan =
        shard.session->Optimize(job.expr, *job.catalog, options);
    job.promise.set_value(std::move(plan));
  } catch (...) {
    job.promise.set_exception(std::current_exception());
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.executed;
    if (stolen) ++shard.steals;
    shard.session_stats = shard.session->stats();
    shard.cache_stats = shard.session->cache_stats();
    shard.cache_entries = shard.session->PlanCacheSize();
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ++completed_;
  }
  done_cv_.notify_all();
}

void SessionPool::WorkerLoop(size_t self) {
  while (true) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      seen = work_epoch_;
    }
    bool stolen = false;
    std::unique_ptr<Job> job = NextJob(self, &stolen);
    if (job) {
      RunJob(self, *job, stolen);
      continue;
    }
    // Nothing anywhere: park until an enqueue bumps the epoch. Reading the
    // epoch before the scan makes the sleep missed-wakeup-free — a job
    // enqueued after the read changes the epoch and the wait falls through.
    std::unique_lock<std::mutex> lock(park_mu_);
    park_cv_.wait(lock,
                  [&] { return shutdown_ || work_epoch_ != seen; });
    if (shutdown_) break;  // the destructor drained the queues already
  }
}

}  // namespace spores
