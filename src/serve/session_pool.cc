#include "src/serve/session_pool.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <exception>
#include <filesystem>
#include <new>
#include <sstream>

#include "src/canon/isomorphism.h"
#include "src/cost/cost_model.h"
#include "src/util/check.h"

namespace spores {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Index of the best job in `queue`: lowest priority value first, FIFO
/// (enqueue seq) within a level. Queues are short; a linear scan beats
/// maintaining a heap under the shard mutex.
template <typename Queue>
size_t BestJob(const Queue& queue) {
  size_t best = 0;
  for (size_t i = 1; i < queue.size(); ++i) {
    if (queue[i]->priority < queue[best]->priority ||
        (queue[i]->priority == queue[best]->priority &&
         queue[i]->seq < queue[best]->seq)) {
      best = i;
    }
  }
  return best;
}

}  // namespace

size_t PoolStats::TotalExecuted() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.executed;
  return n;
}

size_t PoolStats::TotalSteals() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.steals;
  return n;
}

size_t PoolStats::TotalExpired() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.expired;
  return n;
}

size_t PoolStats::TotalCancelled() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.cancelled;
  return n;
}

size_t PoolStats::TotalRejected() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.rejected;
  return n;
}

size_t PoolStats::TotalRestarts() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.restarts;
  return n;
}

size_t PoolStats::TotalRestoredPlans() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.restored_plans;
  return n;
}

size_t PoolStats::TotalRestoredClasses() const {
  size_t n = 0;
  for (const ShardStats& s : shards) n += s.session.restored_classes;
  return n;
}

double PoolStats::CacheHitRate() const {
  size_t hits = 0, misses = 0;
  for (const ShardStats& s : shards) {
    hits += s.cache.hits;
    misses += s.cache.misses;
  }
  return hits + misses == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

std::string PoolStats::ToString() const {
  std::ostringstream os;
  os << shards.size() << " shards: " << submitted << " submitted ("
     << dedup_hits << " batch-deduped, " << pregroup_hits << " pre-grouped), "
     << completed << " completed, " << TotalRejected() << " rejected, "
     << TotalExpired() << " expired, " << TotalCancelled() << " cancelled, "
     << TotalSteals() << " steals, cache hit rate " << CacheHitRate();
  // Fault-containment counters appear only once something fired, so the
  // healthy-path output is unchanged.
  if (TotalRestarts() > 0 || quarantined > 0 || shed > 0) {
    os << "; containment: " << TotalRestarts() << " shard restarts, "
       << quarantined << " quarantined, " << shed << " shed";
  }
  os << "\n";
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    os << "  shard " << i << ": " << s.executed << " executed (" << s.steals
       << " stolen, " << s.stolen_from << " stolen from, " << s.expired
       << " expired, " << s.cancelled << " cancelled, " << s.rejected
       << " rejected), depth " << s.queue_depth << (s.busy ? " busy" : "")
       << ", cache " << s.cache.hits << "/" << (s.cache.hits + s.cache.misses)
       << " hits, " << s.cache_entries << " entries; "
       << s.session.ToString();
    if (s.cold_start != ColdStartReason::kDisabled) {
      os << "; startup " << ColdStartReasonName(s.cold_start);
      if (s.snapshot_age_seconds >= 0) {
        os << " (snapshot age " << s.snapshot_age_seconds << "s)";
      }
    }
    if (s.restarts > 0) {
      os << "; restarts " << s.restarts << " (" << s.restart_poisoned
         << " poisoned, " << s.restart_bad_alloc << " bad_alloc, "
         << s.restart_hangs << " hangs)" << (s.poisoned ? " POISONED" : "");
    }
    os << "\n";
  }
  return os.str();
}

SessionPool::SessionPool(std::shared_ptr<const OptimizerContext> context,
                         PoolConfig config)
    : context_(std::move(context)),
      config_(std::move(config)),
      router_(config_.num_shards, context_, config_.router) {
  SPORES_CHECK_GT(config_.num_shards, 0u);
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session =
        std::make_unique<OptimizerSession>(context_, config_.session);
    shards_.push_back(std::move(shard));
  }
  if (!config_.persist.dir.empty()) {
    // CheckpointManager expects the directory to exist; creating it is the
    // serving layer's job. Failure surfaces as kNoSnapshot + best-effort
    // journaling, not a crash — persistence must never stop serving.
    std::error_code ec;
    std::filesystem::create_directories(config_.persist.dir, ec);
    JournalHeader identity;
    identity.rule_set_hash = RuleSetHash(context_->rules());
    identity.cost_model_hash = CostModelParamsHash();
    identity.shard_count = static_cast<uint32_t>(config_.num_shards);
    CheckpointConfig ck;
    ck.dir = config_.persist.dir;
    ck.journal_inserts = config_.persist.journal_inserts;
    manager_ = std::make_unique<CheckpointManager>(ck, identity);
    // Restore before any worker exists: the whole load — dims, graph
    // rebuild, cache replay, router pins — runs in this single-threaded
    // window, so sessions never see concurrent restore + serve traffic.
    RestoreShards();
    if (config_.persist.journal_inserts) {
      // The WAL hook, installed AFTER restore so replayed entries are never
      // re-journaled (RestorePlanCacheEntry bypasses the listener anyway;
      // this keeps the ordering obviously right). Fires on the worker
      // thread at every organic insert.
      for (size_t i = 0; i < config_.num_shards; ++i) {
        shards_[i]->session->set_plan_insert_listener(
            [this, i](const PlanCacheKey& key, const OptimizedPlan& plan) {
              manager_->JournalInsert(i, key, plan);
            });
      }
    }
  }
  // Workers start only after every shard exists: a thief scans all queues.
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
  if (config_.supervision.enable) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

CheckpointManager::Restore SessionPool::RestoreIntoSession(
    size_t index, OptimizerSession& session) {
  SnapshotExpectation expect;
  expect.rule_set_hash = RuleSetHash(context_->rules());
  expect.cost_model_hash = CostModelParamsHash();
  expect.shard_count = static_cast<uint32_t>(config_.num_shards);
  CheckpointManager::Restore r = manager_->RestoreShard(index, expect);
  if (r.reason != ColdStartReason::kWarmRestore) return r;
  // Dims first: analysis and costing hard-fail on unknown attributes, so
  // the graph rebuild and any later costing need every persisted
  // (attr, dim) registered. DimEnv is write-once-monotone and the values
  // were read from this very env last run, so re-registering live
  // attributes is a no-op.
  for (const auto& dim : r.data.dims) {
    context_->dims()->Set(Symbol::Intern(dim.first), dim.second);
  }
  if (r.data.has_graph) {
    session.RestoreSharedGraph(r.data.catalog,
                               std::move(r.data.catalog_signature),
                               r.data.graph);
  }
  // Snapshot entries are LRU-first with journal entries after them, so
  // replaying in order reproduces the cache's recency order (and thus
  // its eviction behavior) exactly. Each class is re-pinned to this
  // shard — a restored plan the router routes elsewhere is a cache entry
  // nobody ever hits. (On a mid-serve rebuild the pin is a no-op for
  // classes already live-routed; RestorePin lets existing pins win.)
  auto replay = [&](std::vector<PlanStoreEntry>& entries) {
    for (PlanStoreEntry& e : entries) {
      router_.RestorePin(e.key.fingerprint, index);
      session.RestorePlanCacheEntry(e.key, std::move(e.plan));
    }
  };
  replay(r.data.entries);
  replay(r.journal_entries);
  return r;
}

void SessionPool::RestoreShards() {
  const int64_t now = static_cast<int64_t>(std::time(nullptr));
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    CheckpointManager::Restore r = RestoreIntoSession(i, *shard.session);
    shard.cold_start = r.reason;
    shard.cold_start_detail = std::move(r.detail);
    if (r.reason != ColdStartReason::kWarmRestore) continue;
    if (r.created_unix_seconds > 0) {
      shard.snapshot_age_seconds =
          std::max<int64_t>(0, now - r.created_unix_seconds);
    }
    // Publish restore counters so Stats() reflects the warm state before
    // the first job snapshots them organically.
    shard.session_stats = shard.session->stats();
    shard.cache_stats = shard.session->cache_stats();
    shard.cache_entries = shard.session->PlanCacheSize();
  }
}

SessionPool::~SessionPool() {
  Drain();  // every future is completed before teardown
  if (manager_ && config_.persist.checkpoint_on_shutdown) {
    // Workers are idle but still alive, so the capture tasks have threads
    // to run on. The result is advisory at shutdown: the journals still
    // hold anything a failed snapshot write would have covered.
    Status st = Checkpoint();
    (void)st;
  }
  // Stop the watchdog before the workers: a dying watchdog must never fire
  // a cancel into a worker that is mid-teardown.
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    shutdown_ = true;
  }
  park_cv_.notify_all();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

const std::vector<size_t>& SessionPool::QueueDepths() const {
  // Lock-free snapshot of the atomic depth mirrors (see Shard::depth):
  // router bias is a heuristic, so a slightly stale depth is fine, and the
  // submit hot path must neither contend with every worker's queue mutex
  // nor heap-allocate per submission (the buffer is reused per thread).
  static thread_local std::vector<size_t> depths;
  depths.assign(shards_.size(), 0);
  for (size_t i = 0; i < shards_.size(); ++i) {
    depths[i] = shards_[i]->depth.load(std::memory_order_relaxed);
  }
  return depths;
}

SessionPool::Future SessionPool::Enqueue(std::unique_ptr<Job> job) {
  Future future = Future::Make();
  job->state = future.state_;
  job->seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& home = *shards_[job->home_shard];
  // Poison-query quarantine: a canonical form that has crashed or hung
  // shards `strikes` times is turned away before it can take down another
  // worker — checked ahead of depth/age admission so a poison query never
  // consumes an admission slot either.
  if (config_.quarantine.strikes > 0 && QuarantineRejects(QuarantineHash(*job))) {
    {
      std::lock_guard<std::mutex> lock(home.mu);
      ++home.rejected;
    }
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    future.state_->Complete(Status::FailedPrecondition(
        "quarantined: this query repeatedly crashed or hung optimizer "
        "shards"));
    return future;
  }
  // Memory-pressure shedding: while the pool-wide e-graph arena (lock-free
  // sum of per-shard node mirrors) is over the configured ceiling, the
  // cheap-to-retry low-priority tail is rejected up front so high-priority
  // traffic keeps a session to run on.
  if (config_.admission.shed_arena_nodes > 0 &&
      job->priority >= kPriorityLow) {
    size_t arena_total = 0;
    for (const auto& s : shards_) {
      arena_total += s->arena_nodes.load(std::memory_order_relaxed);
    }
    if (arena_total > config_.admission.shed_arena_nodes) {
      {
        std::lock_guard<std::mutex> lock(home.mu);
        ++home.rejected;
      }
      shed_.fetch_add(1, std::memory_order_relaxed);
      future.state_->Complete(Status::ResourceExhausted(
          "shed: pool e-graph memory over threshold, low-priority work "
          "rejected"));
      return future;
    }
  }
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(home.mu);
    // Admission control: a queue at its depth bound, or whose oldest
    // waiter has aged past the backlog threshold, is not draining — a new
    // arrival would only wait to expire. Reject it now, while the caller
    // can still shed load or retry elsewhere, instead of after it has
    // burned its deadline in line.
    const AdmissionConfig& adm = config_.admission;
    rejected =
        (adm.max_queue_depth > 0 && home.queue.size() >= adm.max_queue_depth);
    if (!rejected && adm.max_queue_age_seconds > 0 && !home.queue.empty()) {
      // Stall signal: how long the queue has gone without a dequeue while
      // jobs wait. The front of the deque is the oldest admission (pushes
      // are back-only, removals order-preserving), so min(front's wait,
      // time since last pop) is exactly that — O(1), and immune to one
      // starved low-priority waiter aging while the queue drains fine.
      double front_wait = home.queue.front()->queued.Seconds();
      double since_pop =
          static_cast<double>(
              NowNanos() - home.last_pop_ns.load(std::memory_order_relaxed)) *
          1e-9;
      rejected = std::min(front_wait, since_pop) > adm.max_queue_age_seconds;
    }
    if (rejected) {
      ++home.rejected;
    } else {
      // Count the job submitted BEFORE it becomes visible in the queue
      // (lock order home.mu -> done_mu_, used nowhere in reverse): a
      // worker popping and completing it instantly must never drive
      // completed_ past submitted_ under Drain()'s predicate.
      {
        std::lock_guard<std::mutex> done_lock(done_mu_);
        ++submitted_;
      }
      job->queued.Reset();  // age clock starts at admission, not enqueue
      home.queue.push_back(std::move(job));
      home.depth.store(home.queue.size(), std::memory_order_relaxed);
    }
  }
  if (rejected) {
    // Complete outside the shard lock (nothing can have registered a
    // callback yet, but Complete should never run under a pool mutex).
    future.state_->Complete(Status::ResourceExhausted(
        "admission: shard queue over depth/age threshold"));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    ++work_epoch_;
  }
  park_cv_.notify_all();
  return future;
}

SessionPool::Future SessionPool::SubmitAsync(const ServeRequest& request) {
  SPORES_CHECK(request.expr != nullptr);
  SPORES_CHECK(request.catalog != nullptr);
  RouteDecision route =
      config_.enable_load_bias
          ? router_.Route(request.expr, *request.catalog, QueueDepths())
          : router_.Route(request.expr, *request.catalog);
  auto job = std::make_unique<Job>();
  job->expr = request.expr;
  job->catalog = request.catalog;
  job->home_shard = route.shard;
  job->priority = request.priority;
  job->deadline = request.deadline;
  if (route.key.ok()) job->key = std::move(route.key).value();
  if (route.program.ok()) job->translation = std::move(route.program).value();
  return Enqueue(std::move(job));
}

SessionPool::Future SessionPool::Submit(
    ExprPtr expr, std::shared_ptr<const Catalog> catalog) {
  ServeRequest request;
  request.expr = std::move(expr);
  request.catalog = std::move(catalog);
  return SubmitAsync(request);
}

SessionPool::Future SessionPool::AttachMember(const Future& job_future) {
  Future member = Future::MakeAttached(job_future.state_);
  job_future.state_->cancel_votes_needed.fetch_add(1,
                                                   std::memory_order_release);
  auto member_state = member.state_;
  job_future.then([member_state](const Future::Result& r) {
    member_state->Complete(r);
  });
  return member;
}

std::vector<SessionPool::Future> SessionPool::BatchSubmit(
    const std::vector<ServeRequest>& batch) {
  std::vector<Future> futures(batch.size());
  // Two-level dedupe, grouped BEFORE any job is enqueued so the shared job
  // honors every member's contract (pass 2 merges deadlines/priorities).
  // Level 1 pre-groups by structural hash (verified with deep equality):
  // an exact resubmission joins its twin before routing, so it skips the
  // translate/canonicalize cost entirely — the common shape of repeated
  // traffic. Level 2 is the canonical-form test the plan cache runs
  // (exact fingerprint bucket, isomorphism within): it catches
  // differently-written equivalents that level 1 cannot. Every member
  // holds a member handle onto the group's job — so one member's Cancel()
  // only casts a vote, never destroying a result other members wait for,
  // and a rejection is shared by the whole group.
  struct Group {
    RouteDecision route;  ///< by-products of the first routed member
    std::vector<size_t> members;
  };
  /// Structural index: one entry per ROUTED member (group representatives
  /// and canon-joiners alike), so any later structural twin pre-groups.
  struct StructEntry {
    uint64_t hash;
    const Catalog* catalog;
    ExprPtr expr;
    size_t group;
  };
  std::vector<Group> groups;
  std::vector<StructEntry> structs;
  size_t dedup_hits = 0, pregroup_hits = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServeRequest& req = batch[i];
    SPORES_CHECK(req.expr != nullptr);
    SPORES_CHECK(req.catalog != nullptr);
    uint64_t structural_hash = req.expr->Hash();
    size_t group = groups.size();  // sentinel: not joined yet
    for (const StructEntry& e : structs) {
      if (e.hash == structural_hash && e.catalog == req.catalog.get() &&
          ExprEquals(e.expr, req.expr)) {
        group = e.group;
        ++pregroup_hits;
        break;
      }
    }
    if (group == groups.size()) {
      RouteDecision route =
          config_.enable_load_bias
              ? router_.Route(req.expr, *req.catalog, QueueDepths())
              : router_.Route(req.expr, *req.catalog);
      if (route.key.ok()) {
        const PlanCacheKey& key = route.key.value();
        for (size_t g = 0; g < groups.size(); ++g) {
          if (groups[g].route.key.ok() &&
              groups[g].route.key.value().fingerprint == key.fingerprint &&
              PolytermIsomorphic(groups[g].route.key.value().canon,
                                 key.canon)) {
            group = g;  // ride the representative's optimization
            ++dedup_hits;
            break;
          }
        }
      }
      if (group == groups.size()) {
        groups.push_back(Group{std::move(route), {}});
      }
      structs.push_back(
          StructEntry{structural_hash, req.catalog.get(), req.expr, group});
    }
    groups[group].members.push_back(i);
  }
  // Pass 2: one job per group, under the LOOSEST contract across its
  // members — best (lowest) priority, latest deadline (none if any member
  // has none) — so no member can fail with a kDeadlineExceeded, or starve
  // at a priority, it never asked for. Dedupe may only ever give a member
  // a better service level than its own request, not a worse one.
  for (const Group& g : groups) {
    const ServeRequest& rep = batch[g.members.front()];
    int priority = rep.priority;
    Deadline deadline = rep.deadline;
    for (size_t m : g.members) {
      const ServeRequest& req = batch[m];
      priority = std::min(priority, req.priority);
      if (!req.deadline.has_deadline() || !deadline.has_deadline()) {
        deadline = Deadline();
      } else if (req.deadline.RemainingSeconds() >
                 deadline.RemainingSeconds()) {
        deadline = req.deadline;
      }
    }
    auto job = std::make_unique<Job>();
    job->expr = rep.expr;
    job->catalog = rep.catalog;
    job->home_shard = g.route.shard;
    job->priority = priority;
    job->deadline = deadline;
    if (g.route.key.ok()) job->key = g.route.key.value();
    if (g.route.program.ok()) job->translation = g.route.program.value();
    Future job_future = Enqueue(std::move(job));
    for (size_t m : g.members) futures[m] = AttachMember(job_future);
  }
  if (dedup_hits > 0 || pregroup_hits > 0) {
    std::lock_guard<std::mutex> lock(done_mu_);
    dedup_hits_ += dedup_hits;
    pregroup_hits_ += pregroup_hits;
  }
  return futures;
}

PoolStats SessionPool::Stats() const {
  PoolStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.busy = shard->busy.load(std::memory_order_relaxed);
    s.poisoned = shard->poisoned.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(shard->mu);
    s.executed = shard->executed;
    s.steals = shard->steals;
    s.stolen_from = shard->stolen_from;
    s.expired = shard->expired;
    s.cancelled = shard->cancelled;
    s.rejected = shard->rejected;
    s.queue_depth = shard->queue.size();
    s.session = shard->session_stats;
    s.cache = shard->cache_stats;
    s.cache_entries = shard->cache_entries;
    s.cold_start = shard->cold_start;
    s.cold_start_detail = shard->cold_start_detail;
    s.snapshot_age_seconds = shard->snapshot_age_seconds;
    s.restarts = shard->restarts;
    s.restart_poisoned = shard->restart_poisoned;
    s.restart_bad_alloc = shard->restart_bad_alloc;
    s.restart_hangs = shard->restart_hangs;
    out.shards.push_back(std::move(s));
  }
  out.quarantined = quarantined_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(done_mu_);
  out.submitted = submitted_;
  out.completed = completed_;
  out.dedup_hits = dedup_hits_;
  out.pregroup_hits = pregroup_hits_;
  return out;
}

void SessionPool::Drain() {
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] { return completed_ == submitted_; });
  }
  // A drained pool's journaled state is on disk, not in a stdio buffer:
  // callers use Drain() as the quiesce point before copying/inspecting the
  // persistence directory.
  if (manager_) manager_->FlushJournals();
}

Status SessionPool::Checkpoint() {
  if (!manager_) {
    return Status::Unsupported("persistence not configured (persist.dir)");
  }
  // One checkpoint at a time: the per-shard control slot holds one task.
  std::lock_guard<std::mutex> lock(checkpoint_mu_);
  return manager_->CheckpointAll(
      [this](size_t shard) -> std::optional<ShardSnapshotData> {
        ShardSnapshotData data;
        WithShardSession(shard, [&](OptimizerSession& session) {
          // Rotating at the same serialization point as the copy makes the
          // rotated journal cover exactly the inserts the copy includes —
          // no insert is in both the snapshot and a surviving journal, and
          // none is in neither.
          manager_->RotateJournal(shard);
          session.ExportPlanCache(
              [&](const PlanCacheKey& key, const OptimizedPlan& plan) {
                data.entries.push_back(PlanStoreEntry{key, plan});
              });
          data.has_graph = session.ExportSharedGraph(
              &data.catalog_signature, &data.catalog, &data.graph);
        });
        // Dim collection reads the internally-synchronized shared DimEnv
        // against our own copy — it can run here on the checkpoint thread,
        // keeping the worker pause to the copy itself.
        CollectShardDims(*context_->dims(), &data);
        return data;
      },
      static_cast<int64_t>(std::time(nullptr)));
}

void SessionPool::WithShardSession(
    size_t index, const std::function<void(OptimizerSession&)>& fn) {
  Shard& shard = *shards_[index];
  struct Signal {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto sig = std::make_shared<Signal>();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    SPORES_CHECK(!shard.control);  // checkpoint_mu_ admits one at a time
    shard.control = [&fn, sig, &shard] {
      fn(*shard.session);
      std::lock_guard<std::mutex> done_lock(sig->mu);
      sig->done = true;
      sig->cv.notify_all();
    };
  }
  // Wake a parked worker to find the task — the same missed-wakeup-free
  // epoch protocol enqueues use. A busy worker picks it up at the top of
  // its next loop iteration, after the current job.
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    ++work_epoch_;
  }
  park_cv_.notify_all();
  std::unique_lock<std::mutex> wait_lock(sig->mu);
  sig->cv.wait(wait_lock, [&] { return sig->done; });
}

void SessionPool::RunControl(size_t self) {
  Shard& shard = *shards_[self];
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    task.swap(shard.control);
  }
  if (task) task();
}

std::unique_ptr<SessionPool::Job> SessionPool::NextJob(size_t self,
                                                       bool* stolen,
                                                       bool* retry_soon) {
  *stolen = false;
  *retry_soon = false;
  Shard& own = *shards_[self];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      size_t best = BestJob(own.queue);
      auto job = std::move(own.queue[best]);
      own.queue.erase(own.queue.begin() + static_cast<ptrdiff_t>(best));
      own.depth.store(own.queue.size(), std::memory_order_relaxed);
      own.last_pop_ns.store(NowNanos(), std::memory_order_relaxed);
      return job;
    }
  }
  if (!config_.enable_work_stealing || shards_.size() == 1) return nullptr;
  // A queue is stealable when it holds two or more jobs — or exactly one
  // whose home worker has already been busy on its current optimization
  // longer than lone_steal_busy_seconds: the strict depth>=2 floor (PR 4)
  // protects cache warming under light load, but a lone job queued behind
  // a long saturation would otherwise wait that saturation out with an
  // idle worker watching. A lone job whose home worker is NOT yet over the
  // threshold sets *retry_soon so the caller parks with a timeout and
  // re-checks, instead of sleeping until the next enqueue.
  auto lone_stealable = [&](const Shard& victim, bool* pending) {
    if (config_.lone_steal_busy_seconds < 0) return false;
    // Acquire on busy pairs with RunJob's release store, so the timestamp
    // read below is the one published for the CURRENT job — a relaxed pair
    // could see busy==true with a stale (or zero) busy_since_ns and treat
    // a just-started worker as busy for an epoch.
    if (!victim.busy.load(std::memory_order_acquire)) return false;
    double busy_for =
        static_cast<double>(NowNanos() -
                            victim.busy_since_ns.load(
                                std::memory_order_relaxed)) *
        1e-9;
    if (busy_for > config_.lone_steal_busy_seconds) return true;
    *pending = true;
    return false;
  };
  // Pick the most backlogged stealable queue. Depths come from the
  // lock-free mirrors (never two shard locks at once), so the argmax can
  // be stale — the attempt loop below re-verifies under the victim's lock
  // and falls back to any stealable queue.
  size_t best = self, best_depth = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == self) continue;
    Shard& victim = *shards_[i];
    size_t depth = victim.depth.load(std::memory_order_relaxed);
    // A poisoned shard's worker is busy rebuilding its session — its queue
    // drains to peers at ANY depth until the rebuild clears the flag.
    bool stealable =
        depth >= 2 ||
        (depth >= 1 && victim.poisoned.load(std::memory_order_acquire)) ||
        (depth == 1 && lone_stealable(victim, retry_soon));
    if (stealable && depth > best_depth) {
      best = i;
      best_depth = depth;
    }
  }
  if (best == self) return nullptr;
  for (size_t attempt = 0; attempt < shards_.size(); ++attempt) {
    size_t victim_index =
        attempt == 0 ? best : (self + attempt) % shards_.size();
    if (victim_index == self) continue;
    Shard& victim = *shards_[victim_index];
    bool ignored = false;
    std::lock_guard<std::mutex> lock(victim.mu);
    bool stealable = victim.queue.size() >= 2 ||
                     (!victim.queue.empty() &&
                      victim.poisoned.load(std::memory_order_acquire)) ||
                     (victim.queue.size() == 1 &&
                      lone_stealable(victim, &ignored));
    if (stealable) {
      size_t idx = BestJob(victim.queue);
      auto job = std::move(victim.queue[idx]);
      victim.queue.erase(victim.queue.begin() + static_cast<ptrdiff_t>(idx));
      victim.depth.store(victim.queue.size(), std::memory_order_relaxed);
      victim.last_pop_ns.store(NowNanos(), std::memory_order_relaxed);
      ++victim.stolen_from;
      *stolen = true;
      return job;
    }
  }
  return nullptr;
}

void SessionPool::FinishJob() {
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    ++completed_;
  }
  done_cv_.notify_all();
}

void SessionPool::DisposeJob(size_t self, Job& job, Status status) {
  Shard& shard = *shards_[self];
  bool expired = status.code() == StatusCode::kDeadlineExceeded;
  job.state->Complete(Future::Result(std::move(status)));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (expired) {
      ++shard.expired;
    } else {
      ++shard.cancelled;
    }
  }
  FinishJob();
}

void SessionPool::RunJob(size_t self, Job& job, bool stolen) {
  Shard& shard = *shards_[self];
  const bool supervised = config_.supervision.enable;
  const uint64_t qhash =
      (supervised || config_.quarantine.strikes > 0) ? QuarantineHash(job) : 0;
  QueryOptions options;
  // A stolen job bypasses the thief's plan cache entirely: the router
  // assigned its canonical form to another shard, and a shard's cache must
  // only ever hold keys routed to it (the isolation serve_test pins down).
  // It likewise must not reset the thief's warm shared e-graph when it
  // carries a foreign catalog — that graph serves the shard's own traffic.
  options.use_plan_cache = !stolen;
  options.preserve_shared_egraph = stolen;
  options.key = job.key ? &*job.key : nullptr;
  options.translation = job.translation ? &*job.translation : nullptr;
  // The job's remaining deadline and its future's cancel token ride into
  // every stage: saturation clamps its runner timeout, extraction clamps or
  // skips ILP, and Cancel() stops in-flight work at the next checkpoint.
  options.budget.deadline = job.deadline;
  options.budget.cancel = job.state->cancel;
  // Publish the timestamp BEFORE the busy flag (release/acquire pair with
  // lone_stealable): a thief that sees busy==true must also see this job's
  // start time, not the previous job's.
  const int64_t started_ns = NowNanos();
  shard.busy_since_ns.store(started_ns, std::memory_order_relaxed);
  shard.busy.store(true, std::memory_order_release);
  if (supervised) {
    // Register for the watchdog: the hang threshold is a multiple of the
    // job's own remaining budget (a job allowed 100ms that is still running
    // at 300ms is stuck — the deadline machinery inside the session should
    // have stopped it long ago), with a fixed default for deadline-less
    // jobs.
    Shard::RunningJob run;
    run.state = job.state;
    run.started_ns = started_ns;
    run.quarantine_hash = qhash;
    run.hang_seconds =
        job.deadline.has_deadline()
            ? std::max(0.01, config_.supervision.hang_grace *
                                 job.deadline.RemainingSeconds())
            : config_.supervision.default_hang_seconds;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.running = std::move(run);
  }
  // An exception escaping the worker body would std::terminate the whole
  // process and strand every waiter (including deduped batch members), so
  // it is converted to a kInternal result — errors are values on this API —
  // and the accounting below still runs so Drain() and the destructor stay
  // live. Under supervision an escape additionally poisons the session:
  // the e-graph/cache were mid-mutation when the stack unwound, so the
  // shard is rebuilt in place before it runs anything else.
  Future::Result result = Status::Internal("unset");
  std::optional<RestartCause> poison;
  try {
    OptimizedPlan plan =
        shard.session->Optimize(job.expr, *job.catalog, options);
    if (job.state->cancel_requested.load(std::memory_order_relaxed)) {
      // Cancelled mid-run: the runner/solver stopped via the token (or the
      // plan raced completion). The caller asked for no result; a plan
      // computed under a cancelled budget is reported as cancelled.
      result = Status::Cancelled("cancelled during optimization");
    } else {
      result = std::move(plan);
    }
  } catch (const std::bad_alloc&) {
    result = Status::ResourceExhausted(
        "optimization ran out of memory; shed load or retry");
    if (supervised) poison = RestartCause::kBadAlloc;
  } catch (const std::exception& e) {
    result = Status::Internal(std::string("optimization threw: ") + e.what());
    if (supervised) poison = RestartCause::kPoisoned;
  } catch (...) {
    result = Status::Internal("optimization threw a non-standard exception");
    if (supervised) poison = RestartCause::kPoisoned;
  }
  shard.busy.store(false, std::memory_order_release);
  if (supervised) {
    bool hang_flagged = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (shard.running) hang_flagged = shard.running->hang_flagged;
      shard.running.reset();
    }
    if (hang_flagged) {
      // The watchdog force-stopped this job via its cancel token. Whatever
      // Optimize returned was computed under a budget the caller never
      // granted; the session's state was mid-flight when yanked. Hang is
      // the cause even if the unwind also threw.
      result = Status::DeadlineExceeded(
          "watchdog: optimization exceeded its hang threshold");
      poison = RestartCause::kHang;
    }
  }
  if (poison) {
    // Mark poisoned BEFORE completing the future and wake the peers, so
    // the queue behind this shard starts draining elsewhere while the
    // rebuild (possibly a full warm restore) runs here.
    shard.poisoned.store(true, std::memory_order_release);
    QuarantineStrike(qhash);
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      ++work_epoch_;
    }
    park_cv_.notify_all();
  }
  job.state->Complete(std::move(result));
  if (poison) RebuildShard(self, *poison);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.executed;
    if (stolen) ++shard.steals;
    shard.session_stats = shard.session->stats();
    shard.cache_stats = shard.session->cache_stats();
    shard.cache_entries = shard.session->PlanCacheSize();
  }
  const EGraph* graph = shard.session->shared_egraph();
  shard.arena_nodes.store(graph ? graph->NumNodes() : 0,
                          std::memory_order_relaxed);
  FinishJob();
}

void SessionPool::RebuildShard(size_t self, RestartCause cause) {
  Shard& shard = *shards_[self];
  // Build and warm-restore the replacement session before swapping it in.
  // This runs on the shard's own worker thread between jobs — the only
  // thread allowed to touch the session — while peers steal the queue
  // (poisoned shards are stealable at any depth). The poisoned session is
  // only ever destroyed here, never used again.
  std::unique_ptr<OptimizerSession> fresh;
  try {
    fresh = std::make_unique<OptimizerSession>(context_, config_.session);
    if (manager_) RestoreIntoSession(self, *fresh);
  } catch (const std::exception&) {
    // The warm restore itself failed (allocation pressure, injected fault,
    // corrupt snapshot racing a checkpoint): fall back to a plain cold
    // session — a cold shard that serves beats a warm one that crashed.
    fresh = std::make_unique<OptimizerSession>(context_, config_.session);
  }
  if (manager_ && config_.persist.journal_inserts) {
    fresh->set_plan_insert_listener(
        [this, self](const PlanCacheKey& key, const OptimizedPlan& plan) {
          manager_->JournalInsert(self, key, plan);
        });
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.session = std::move(fresh);
    ++shard.restarts;
    switch (cause) {
      case RestartCause::kPoisoned:
        ++shard.restart_poisoned;
        break;
      case RestartCause::kBadAlloc:
        ++shard.restart_bad_alloc;
        break;
      case RestartCause::kHang:
        ++shard.restart_hangs;
        break;
    }
    shard.session_stats = shard.session->stats();
    shard.cache_stats = shard.session->cache_stats();
    shard.cache_entries = shard.session->PlanCacheSize();
  }
  const EGraph* graph = shard.session->shared_egraph();
  shard.arena_nodes.store(graph ? graph->NumNodes() : 0,
                          std::memory_order_relaxed);
  shard.poisoned.store(false, std::memory_order_release);
}

uint64_t SessionPool::QuarantineHash(const Job& job) {
  // Canonical fingerprint when routing produced one (catches rewritten
  // equivalents of a poison query), structural hash otherwise — still
  // deterministic for exact resubmissions of non-canonicalizable input.
  return job.key ? ShardRouter::HashBytes(job.key->fingerprint)
                 : job.expr->Hash();
}

bool SessionPool::QuarantineRejects(uint64_t hash) {
  const int64_t ttl_ns =
      static_cast<int64_t>(config_.quarantine.ttl_seconds * 1e9);
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto it = quarantine_.find(hash);
  if (it == quarantine_.end()) return false;
  if (NowNanos() - it->second.last_strike_ns > ttl_ns) {
    // Strikes expired: forgive. (Its FIFO slot stays; eviction tolerates
    // already-erased entries.)
    quarantine_.erase(it);
    return false;
  }
  return it->second.strikes >= config_.quarantine.strikes;
}

void SessionPool::QuarantineStrike(uint64_t hash) {
  if (config_.quarantine.strikes == 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto it = quarantine_.find(hash);
  if (it == quarantine_.end()) {
    // Bounded record: at capacity the oldest offender is forgotten first
    // (entries the TTL already erased just fall through).
    while (quarantine_.size() >= config_.quarantine.capacity &&
           !quarantine_order_.empty()) {
      quarantine_.erase(quarantine_order_.front());
      quarantine_order_.pop_front();
    }
    it = quarantine_.emplace(hash, QuarantineEntry{}).first;
    quarantine_order_.push_back(hash);
  }
  ++it->second.strikes;
  it->second.last_strike_ns = NowNanos();
}

void SessionPool::WatchdogLoop() {
  const auto poll = std::chrono::duration<double>(
      std::max(0.001, config_.supervision.poll_seconds));
  while (true) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock, poll, [&] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    const int64_t now = NowNanos();
    for (auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::shared_ptr<FutureState> to_cancel;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.running && !shard.running->hang_flagged) {
          const double busy_for =
              static_cast<double>(now - shard.running->started_ns) * 1e-9;
          if (busy_for > shard.running->hang_seconds) {
            shard.running->hang_flagged = true;
            to_cancel = shard.running->state;
          }
        }
      }
      // Fire the cancel token OUTSIDE the shard lock. This is deliberately
      // the raw token, not RequestCancelJob(): the caller didn't cancel,
      // the watchdog did — RunJob maps the flagged completion to
      // kDeadlineExceeded (+ rebuild), not kCancelled. Saturation and the
      // ILP solver observe the token at their next budget checkpoint and
      // unwind cooperatively; a site that never polls again is the
      // worker's loss, but the queue has already drained to peers.
      if (to_cancel) to_cancel->cancel.RequestCancel();
    }
  }
}

void SessionPool::WorkerLoop(size_t self) {
  // Lone-job re-check cadence: half the busy threshold, floored so a tiny
  // threshold cannot turn parking into a spin.
  const double lone_retry_seconds =
      std::max(0.005, config_.lone_steal_busy_seconds / 2.0);
  while (true) {
    uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      seen = work_epoch_;
    }
    // A pending control task (checkpoint capture) runs between jobs on
    // this thread — the only thread allowed to touch the session.
    RunControl(self);
    bool stolen = false, retry_soon = false;
    std::unique_ptr<Job> job = NextJob(self, &stolen, &retry_soon);
    if (job) {
      // Dequeue-time short-circuits: a cancelled or already-expired job
      // never enters Optimize — the whole point of admission + deadlines
      // is not spending saturation budget on work nobody is waiting for.
      if (job->state->cancel_requested.load(std::memory_order_relaxed)) {
        DisposeJob(self, *job, Status::Cancelled("cancelled before dequeue"));
      } else if (job->deadline.Expired()) {
        DisposeJob(self, *job,
                   Status::DeadlineExceeded("deadline expired in queue"));
      } else {
        RunJob(self, *job, stolen);
      }
      continue;
    }
    // Nothing runnable: park until an enqueue bumps the epoch. Reading the
    // epoch before the scan makes the sleep missed-wakeup-free — a job
    // enqueued after the read changes the epoch and the wait falls
    // through. With a pending lone-job steal the park times out so the
    // busy threshold is re-checked without waiting for the next enqueue.
    std::unique_lock<std::mutex> lock(park_mu_);
    if (retry_soon) {
      park_cv_.wait_for(lock, std::chrono::duration<double>(
                                  lone_retry_seconds),
                        [&] { return shutdown_ || work_epoch_ != seen; });
    } else {
      park_cv_.wait(lock, [&] { return shutdown_ || work_epoch_ != seen; });
    }
    if (shutdown_) break;  // the destructor drained the queues already
  }
}

}  // namespace spores
