// Lock-free multi-producer single-consumer job queues for the session pool
// (PR 9). Replaces the per-shard mutex + std::deque: producers (Enqueue and
// control-plane threads, any number of them) push with one atomic exchange
// and one release store — no lock, no allocation (nodes are intrusive) — so
// submission on one core never serializes against submission on another.
//
// Structure:
//
//   MpscIntrusiveQueue   one Vyukov-style intrusive MPSC queue: lock-free
//                        multi-producer Push, single-consumer Pop.
//   ShardQueue           kPriorityLevels of those plus an atomic occupancy
//                        bitmap, giving strict-priority FIFO-within-level
//                        dequeue without scanning empty levels.
//
// Consumer-side exclusivity is NOT provided here: exactly one thread may be
// inside Pop()/Front()/PopHighestPriority()/FrontHighestPriority() at a
// time. The session
// pool enforces that with a per-shard consumer-guard SpinLock (owner takes
// lock(), thieves take try_lock() and bounce instead of waiting — the
// "bounded fallback lock" confined to the steal path).
#pragma once

#include <atomic>
#include <cstdint>

#include "src/util/tsan_annotate.h"

namespace spores {

/// Base class for anything pushed onto an MpscIntrusiveQueue. The queue
/// links nodes through this hook; a node may sit in at most one queue.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

/// Vyukov intrusive MPSC queue.
///
/// Push is lock-free and wait-free for each producer (one exchange, one
/// store). Pop is single-consumer. The one subtlety of this design: between
/// a producer's tail exchange and its next-pointer store, the chain from
/// head to tail is momentarily broken — Pop() observing that window returns
/// nullptr even though the queue is non-empty ("in-flight push"). Callers
/// must therefore never use Pop() == nullptr to conclude emptiness; use
/// Empty() (tail inspection) for that, and treat nullptr-with-nonempty as
/// "retry shortly". The session pool's depth counters + parking epoch
/// already provide that retry loop.
class MpscIntrusiveQueue {
 public:
  MpscIntrusiveQueue() : tail_(&stub_), head_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }
  MpscIntrusiveQueue(const MpscIntrusiveQueue&) = delete;
  MpscIntrusiveQueue& operator=(const MpscIntrusiveQueue&) = delete;

  /// Multi-producer; lock-free. Publication edge: the release store to
  /// prev->next makes every write the producer made to *node (and before)
  /// visible to the consumer that acquires it in Pop().
  void Push(MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    SPORES_ANNOTATE_HAPPENS_BEFORE(node);
    MpscNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
    // Window: a Pop between the exchange above and the store below sees a
    // broken chain and returns nullptr (see class comment).
    prev->next.store(node, std::memory_order_release);
  }

  /// Single-consumer. Returns nullptr if the queue is empty OR a push is
  /// in flight (indistinguishable here; see class comment).
  MpscNode* Pop() {
    MpscNode* head = head_;
    MpscNode* next = head->next.load(std::memory_order_acquire);
    if (head == &stub_) {
      if (next == nullptr) return nullptr;  // empty or in-flight push
      head_ = next;
      head = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      head_ = next;
      SPORES_ANNOTATE_HAPPENS_AFTER(head);
      return head;
    }
    // head is the last visible node. If it is also the tail, re-route the
    // tail through the stub so the queue stays well-formed after we take
    // the node; otherwise a push is in flight — bail and let the caller
    // retry (taking head now would strand the in-flight node).
    if (tail_.load(std::memory_order_acquire) != head) return nullptr;
    Push(&stub_);
    next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) return nullptr;  // another push slid in first
    head_ = next;
    SPORES_ANNOTATE_HAPPENS_AFTER(head);
    return head;
  }

  /// Consumer-side peek at the oldest element without removing it. Same
  /// in-flight caveat as Pop(): may return nullptr while non-Empty().
  MpscNode* Front() {
    MpscNode* head = head_;
    if (head != &stub_) return head;
    return head->next.load(std::memory_order_acquire);
  }

  /// True iff no node is in the queue and no push is in flight. Safe from
  /// any thread, but only a point-in-time answer.
  bool Empty() const {
    return tail_.load(std::memory_order_acquire) == &stub_ &&
           stub_.next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  // Producers touch only tail_; the consumer touches head_ and node links.
  // Separate cache lines so pushes do not invalidate the consumer's line.
  alignas(64) std::atomic<MpscNode*> tail_;
  alignas(64) MpscNode* head_;
  MpscNode stub_;
};

/// Priority-striped MPSC queue: one MpscIntrusiveQueue per priority level
/// plus an occupancy bitmap so the consumer finds the highest-priority
/// non-empty level with one atomic load + count-trailing-zeros.
///
/// Priority contract: levels 0 (highest) through kPriorityLevels-1; pushes
/// with larger priority values are clamped to the lowest level. (The pool's
/// public kPriorityHigh/Normal/Low = 0/1/2 all map within range; clamping
/// only affects out-of-range custom priorities, which previously got exact
/// integer ordering — the clamp trades that unused generality for O(1)
/// dequeue.) Within a level, FIFO per producer; across producers, order is
/// the linearization order of the tail exchanges.
///
/// Occupancy protocol (the subtle part):
///  * Producer: Push first, THEN set the level's bit (release not needed —
///    the queue's own release edge publishes the node; the bit is only a
///    hint). A consumer that clears the bit after our push but before our
///    set will re-set it via the recheck below at worst one extra time.
///  * Consumer: on finding a level's bit set but Pop() returning nullptr,
///    clear the bit, then RE-CHECK Empty(); if the level is non-empty (or
///    a push is in flight), restore the bit. This never strands a node:
///    either the recheck sees the push's tail exchange and restores the
///    bit, or the push's fetch_or (which follows its exchange) re-sets it.
class ShardQueue {
 public:
  static constexpr int kPriorityLevels = 4;

  static int LevelFor(int priority) {
    if (priority < 0) return 0;
    if (priority >= kPriorityLevels) return kPriorityLevels - 1;
    return priority;
  }

  /// Multi-producer; lock-free.
  void Push(MpscNode* node, int priority) {
    int level = LevelFor(priority);
    levels_[level].Push(node);
    occupancy_.fetch_or(uint32_t{1} << level, std::memory_order_release);
  }

  /// Single-consumer: pop from the highest-priority non-empty level. If
  /// `level_out` is non-null, receives the level popped from. Returns
  /// nullptr when all levels are empty or every non-empty level has a push
  /// in flight (retry shortly; see MpscIntrusiveQueue).
  MpscNode* PopHighestPriority(int* level_out = nullptr) {
    uint32_t occ = occupancy_.load(std::memory_order_acquire);
    while (occ != 0) {
      int level = __builtin_ctz(occ);
      MpscNode* node = levels_[level].Pop();
      if (node != nullptr) {
        if (levels_[level].Empty()) ClearBitCarefully(level);
        if (level_out != nullptr) *level_out = level;
        return node;
      }
      if (levels_[level].Empty()) {
        ClearBitCarefully(level);
      }
      // In-flight push on this level, or emptied under us: move on to the
      // next candidate level this round; the caller's retry loop (depth
      // counter + parking epoch) guarantees we come back.
      occ &= ~(uint32_t{1} << level);
    }
    return nullptr;
  }

  /// Single-consumer: the oldest element of the highest-priority non-empty
  /// level, without removing it. nullptr under the same caveats as Pop.
  MpscNode* FrontHighestPriority() {
    uint32_t occ = occupancy_.load(std::memory_order_acquire);
    while (occ != 0) {
      int level = __builtin_ctz(occ);
      MpscNode* node = levels_[level].Front();
      if (node != nullptr) return node;
      occ &= ~(uint32_t{1} << level);
    }
    return nullptr;
  }

  /// True iff every level is empty with no push in flight. Any thread.
  bool Empty() const {
    for (int i = 0; i < kPriorityLevels; ++i) {
      if (!levels_[i].Empty()) return false;
    }
    return true;
  }

 private:
  void ClearBitCarefully(int level) {
    occupancy_.fetch_and(~(uint32_t{1} << level), std::memory_order_acq_rel);
    // Recheck after clearing: a producer may have pushed between our Pop
    // and the clear (its fetch_or may already have happened). Restoring on
    // non-Empty() closes the race; the cost is at most one spurious bit.
    if (!levels_[level].Empty()) {
      occupancy_.fetch_or(uint32_t{1} << level, std::memory_order_release);
    }
  }

  MpscIntrusiveQueue levels_[kPriorityLevels];
  std::atomic<uint32_t> occupancy_{0};
};

}  // namespace spores
