// Bridges the runtime's per-op execution profile (ExecStats::profile) to
// the optimizer's calibration feedback (ExecutionFeedback) without coupling
// the serving tier to the runtime at link time: everything here is inline
// over header-only types, so spores_serve never links spores_runtime — only
// callers that actually execute plans (benches, applications) pay that dep.
//
// Intended use on an executing thread:
//
//   ExecStats stats;
//   stats.track_dense_nnz = true;  // dense outputs get exact nnz; without
//                                  // it dense rows carry out_nnz = -1 and
//                                  // calibration falls back to the shape
//   auto result = Execute(plan.expr, inputs, &arena, &stats);
//   pool.RecordExecution(MakeExecutionFeedback(plan, stats));
//
// ExecStats::profile holds only the MOST RECENT Execute call (cleared at
// the start of every evaluation attempt), so harvest it between calls.
#pragma once

#include "src/optimizer/optimized_plan.h"
#include "src/optimizer/optimizer_session.h"
#include "src/runtime/executor.h"

namespace spores {

/// Converts one executed plan + its execution profile into the feedback
/// record RecordExecution consumes. The plan supplies the drift inputs
/// (cache fingerprint + predicted cost); the profile supplies the samples.
/// A plan that never went through the plan cache (empty fingerprint) still
/// calibrates — it just cannot trigger a re-extraction.
inline ExecutionFeedback MakeExecutionFeedback(const OptimizedPlan& plan,
                                               const ExecStats& stats) {
  ExecutionFeedback out;
  out.fingerprint = plan.cache_fingerprint;
  out.predicted_cost = plan.plan_cost;
  out.samples.reserve(stats.profile.size());
  for (const OpProfile& p : stats.profile) {
    CalibrationSample s;
    s.op = p.op;
    s.rows = p.rows;
    s.cols = p.cols;
    s.out_nnz = p.out_nnz;
    s.seconds = p.seconds;
    out.samples.push_back(std::move(s));
  }
  return out;
}

}  // namespace spores
