#include "src/serve/shard_router.h"

#include <algorithm>
#include <cstdio>

#include "src/rules/rules_lr.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace spores {

ShardRouter::ShardRouter(size_t num_shards,
                         std::shared_ptr<const OptimizerContext> ctx,
                         RouterConfig config)
    : num_shards_(num_shards), context_(std::move(ctx)), config_(config) {
  SPORES_CHECK_GT(num_shards_, 0u);
  SPORES_CHECK(context_ != nullptr);
  SPORES_CHECK_GT(config_.affinity_capacity, 0u);
}

uint64_t ShardRouter::HashBytes(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

size_t ShardRouter::PlaceNewClass(uint64_t fingerprint_hash,
                                  const std::vector<size_t>* queue_depths,
                                  bool* biased) const {
  size_t home = fingerprint_hash % num_shards_;
  if (queue_depths && queue_depths->size() == num_shards_) {
    size_t shallowest = home;
    for (size_t i = 0; i < num_shards_; ++i) {
      if ((*queue_depths)[i] < (*queue_depths)[shallowest]) shallowest = i;
    }
    if ((*queue_depths)[home] >
        (*queue_depths)[shallowest] + config_.load_bias_slack) {
      *biased = true;
      return shallowest;
    }
  }
  return home;
}

RouteDecision ShardRouter::Route(const ExprPtr& expr,
                                 const Catalog& catalog) const {
  return Route(expr, catalog, {});
}

void ShardRouter::RestorePin(const std::string& fingerprint, size_t shard) {
  if (shard >= num_shards_) return;
  const uint64_t fp_hash = HashBytes(fingerprint);
  AffinityBucket& bucket = BucketOf(fp_hash);
  std::lock_guard<InstrumentedMutex> lock(bucket.mu);
  if (bucket.pins.count(fp_hash)) return;  // live routing outranks replay
  bucket.pins.emplace(fp_hash, static_cast<uint32_t>(shard));
  bucket.fifo.push_back(fp_hash);
  if (bucket.fifo.size() > BucketCapacity()) {
    bucket.pins.erase(bucket.fifo.front());
    bucket.fifo.pop_front();
  }
}

size_t ShardRouter::PinnedShardOrHash(const std::string& fingerprint) const {
  const uint64_t fp_hash = HashBytes(fingerprint);
  AffinityBucket& bucket = BucketOf(fp_hash);
  std::lock_guard<InstrumentedMutex> lock(bucket.mu);
  auto it = bucket.pins.find(fp_hash);
  return it != bucket.pins.end() ? it->second : fp_hash % num_shards_;
}

uint64_t ShardRouter::ContendedAcquisitions() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) total += buckets_[i].mu.contended();
  return total;
}

RouteDecision ShardRouter::Route(const ExprPtr& expr, const Catalog& catalog,
                                 const std::vector<size_t>& queue_depths) const {
  Timer timer;
  RouteDecision out;
  // Same translation the executing session would run: deterministic
  // attribute naming plus the shared DimEnv make the canonical form a pure
  // function of (expr structure, catalog dims) regardless of which thread
  // translates first.
  out.program = TranslateLaToRa(expr, catalog, context_->dims());
  if (out.program.ok()) {
    out.key = BuildPlanCacheKey(expr, out.program.value(), catalog,
                                *context_->dims());
  } else {
    out.key = out.program.status();
  }
  if (out.key.ok()) {
    // The fingerprint is renaming-invariant (exact input metadata + the
    // polyterm signature), so isomorphic queries share it — and, through
    // the affinity map, the shard. The lookup+insert is one critical
    // section (the class's bucket lock) so two racing submitters of a
    // brand-new class agree on its placement — the second one finds the
    // first one's pin. Different classes usually hash to different
    // buckets and never contend.
    uint64_t fp_hash = HashBytes(out.key.value().fingerprint);
    AffinityBucket& bucket = BucketOf(fp_hash);
    std::lock_guard<InstrumentedMutex> lock(bucket.mu);
    auto it = bucket.pins.find(fp_hash);
    if (it != bucket.pins.end()) {
      out.known_class = true;
      out.shard = it->second;
    } else {
      out.shard = PlaceNewClass(
          fp_hash, queue_depths.empty() ? nullptr : &queue_depths,
          &out.load_biased);
      bucket.pins.emplace(fp_hash, static_cast<uint32_t>(out.shard));
      bucket.fifo.push_back(fp_hash);
      if (bucket.fifo.size() > BucketCapacity()) {
        bucket.pins.erase(bucket.fifo.front());
        bucket.fifo.pop_front();
      }
    }
  } else {
    // Canonicalization bypass: route on structure + the catalog signature
    // (the session keys its shared e-graph on the same fingerprint).
    // Isomorphism groups whose members are structurally distinct may split
    // across shards, but each individual query still routes
    // deterministically — and never load-biased, since no cache affinity
    // exists to manage.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(expr->Hash()));
    out.shard = HashBytes(buf + CatalogSignature(catalog)) % num_shards_;
  }
  out.seconds = timer.Seconds();
  return out;
}

}  // namespace spores
