#include "src/serve/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/rules/rules_lr.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace spores {

ShardRouter::ShardRouter(size_t num_shards,
                         std::shared_ptr<const OptimizerContext> ctx)
    : num_shards_(num_shards), context_(std::move(ctx)) {
  SPORES_CHECK_GT(num_shards_, 0u);
  SPORES_CHECK(context_ != nullptr);
}

uint64_t ShardRouter::HashBytes(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

RouteDecision ShardRouter::Route(const ExprPtr& expr,
                                 const Catalog& catalog) const {
  Timer timer;
  RouteDecision out;
  // Same translation the executing session would run: deterministic
  // attribute naming plus the shared DimEnv make the canonical form a pure
  // function of (expr structure, catalog dims) regardless of which thread
  // translates first.
  out.program = TranslateLaToRa(expr, catalog, context_->dims());
  if (out.program.ok()) {
    out.key = BuildPlanCacheKey(expr, out.program.value(), catalog,
                                *context_->dims());
  } else {
    out.key = out.program.status();
  }
  if (out.key.ok()) {
    // The fingerprint is renaming-invariant (exact input metadata + the
    // polyterm signature), so isomorphic queries share it — and the shard.
    out.shard = HashBytes(out.key.value().fingerprint) % num_shards_;
  } else {
    // Canonicalization bypass: route on structure + the catalog signature
    // (the session keys its shared e-graph on the same fingerprint).
    // Isomorphism groups whose members are structurally distinct may split
    // across shards, but each individual query still routes
    // deterministically.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(expr->Hash()));
    out.shard = HashBytes(buf + CatalogSignature(catalog)) % num_shards_;
  }
  out.seconds = timer.Seconds();
  return out;
}

}  // namespace spores
