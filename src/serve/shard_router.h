// Canonical-form shard routing with load-aware placement of new classes.
//
// A serving deployment runs N shard-local optimizer sessions; which shard a
// query lands on decides which plan cache and which warm e-graph it can
// reuse. Routing on the query text would scatter isomorphic queries (every
// resubmission draws fresh attribute names; equivalent queries can be
// written differently) across shards, duplicating saturation work N ways.
// The router therefore routes on the *canonical form*: it translates the
// query, builds the same canonical-form cache key the plan cache uses, and
// hashes the key's renaming-invariant fingerprint — so every member of an
// isomorphism class maps to the same shard, and a shard's plan cache sees
// a closed key population (the isolation the routing tests pin down).
//
// Placement is steal-aware (PR 5): pure fingerprint hashing can pile new
// work onto a shard that is already deep in saturation, leaving the pool to
// fix placement after the fact by stealing — which forfeits cache warming.
// So the router keeps an *affinity map* (fingerprint hash -> shard):
//
//  * A KNOWN fingerprint always routes to its pinned shard — its plan cache
//    entry and warm e-graph region live there; load never moves it.
//  * A NEW fingerprint defaults to hash % num_shards, but when the caller
//    provides a queue-depth snapshot and the home queue is deeper than the
//    shallowest by more than RouterConfig::load_bias_slack, it is placed on
//    the shallowest queue instead — and pinned there, so the class's future
//    members keep the new home's cache affinity.
//
// The map is bounded (FIFO eviction). Eviction only costs performance, not
// correctness: a re-routed class may leave a stale cached plan on its old
// shard and re-optimize on the new one.
//
// Queries whose RA term cannot be canonicalized (the plan cache bypasses
// those too) fall back to hashing the expression's structural hash plus the
// catalog fingerprint: still deterministic, just not isomorphism-stable,
// and never load-biased (there is no cache affinity to manage).
//
// The by-product PlanCacheKey is returned with the route so the executing
// session can skip re-canonicalizing (see QueryOptions::key) — on a warm
// shard the whole optimize collapses to one cache probe.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/optimizer/optimizer_context.h"
#include "src/optimizer/plan_cache.h"
#include "src/util/contention.h"

namespace spores {

struct RouterConfig {
  /// Bound on the fingerprint->shard affinity map (FIFO eviction beyond).
  size_t affinity_capacity = 1 << 16;
  /// A new class is moved off its hash-home only when the home queue is
  /// deeper than the shallowest queue by MORE than this. Slack keeps
  /// near-balanced pools on pure hash placement (deterministic, no map
  /// churn from transient one-job differences).
  size_t load_bias_slack = 2;
};

/// Routing decision for one query. The translation and key are by-products
/// the executing session reuses (QueryOptions::{translation,key}) so a
/// routed query is translated and canonicalized exactly once end to end.
struct RouteDecision {
  size_t shard = 0;
  /// This fingerprint was already pinned in the affinity map (its class has
  /// been routed before — the shard's cache plausibly holds its plan).
  bool known_class = false;
  /// The load snapshot moved this new class off its hash-home shard.
  bool load_biased = false;
  /// The canonical-form cache key (error == canonicalization bypass; the
  /// query was routed on its structural fallback hash instead).
  StatusOr<PlanCacheKey> key = Status::Unsupported("not routed");
  /// The LA->RA translation the key was built from.
  StatusOr<RaProgram> program = Status::Unsupported("not routed");
  double seconds = 0.0;  ///< translate + canonicalize time spent routing
};

/// Thread-safe: Route may be called from any number of submitter threads
/// concurrently. The affinity map is sharded into cache-line-aligned
/// buckets by fingerprint hash (PR 9), so concurrent submitters only
/// contend when their classes hash into the same bucket; each bucket's
/// lock is contention-instrumented for the scaling study.
class ShardRouter {
 public:
  ShardRouter(size_t num_shards, std::shared_ptr<const OptimizerContext> ctx,
              RouterConfig config = {});

  size_t num_shards() const { return num_shards_; }

  /// Routes one query without load information: known classes keep their
  /// pinned shard, new classes take hash % num_shards (and are pinned).
  ///
  /// NOTE: every Route call IS a routing decision, not a passive probe —
  /// a new class is pinned in the affinity map as a side effect (under
  /// capacity pressure this can evict another pin). That is deliberate:
  /// callers that ask "where would this land" and then submit must get
  /// the answer they were given, so prediction-by-probing is consistent
  /// by construction (the tests rely on it). It also means a depth-less
  /// probe pins the hash-home and a later load-biased submit honors that
  /// pin rather than re-balancing — affinity always beats balance once a
  /// class is known. There is no read-only observer API on purpose.
  RouteDecision Route(const ExprPtr& expr, const Catalog& catalog) const;

  /// Load-aware routing: `queue_depths[i]` is shard i's queue depth at
  /// submit. Known classes still keep their pinned shard (cache affinity
  /// beats balance); a new class lands on the shallowest queue when its
  /// hash-home is more than load_bias_slack deeper.
  RouteDecision Route(const ExprPtr& expr, const Catalog& catalog,
                      const std::vector<size_t>& queue_depths) const;

  /// Stable 64-bit FNV-1a (not std::hash: shard assignment should not
  /// depend on the standard library's per-process salt).
  static uint64_t HashBytes(const std::string& bytes);

  /// Re-pins a persisted class to the shard that holds its restored plan,
  /// so placement stays stable across restarts (a restored plan the router
  /// would route elsewhere is a cache entry nobody ever hits). An existing
  /// pin wins — live routing decisions outrank snapshot replays. FIFO-
  /// bounded like organic pins.
  void RestorePin(const std::string& fingerprint, size_t shard);

  /// The shard `fingerprint` is currently pinned to, or its stable hash
  /// home when the class has no pin (never routed, or FIFO-evicted). This
  /// IS a read-only probe — unlike Route it never pins — because its
  /// caller (execution feedback) must find the shard that already owns
  /// the plan-cache entry, not make a placement decision.
  size_t PinnedShardOrHash(const std::string& fingerprint) const;

  /// Contended acquisitions of the affinity-bucket locks since
  /// construction (summed). Monotone; the scaling study's view of router
  /// pressure.
  uint64_t ContendedAcquisitions() const;

 private:
  static constexpr size_t kBucketBits = 4;
  static constexpr size_t kNumBuckets = size_t{1} << kBucketBits;  // 16

  /// One affinity-map stripe: fingerprint hash -> pinned shard, guarded by
  /// its own lock, FIFO-bounded at capacity/kNumBuckets. The bound moving
  /// from global to per-bucket only changes WHICH pin eviction forgets
  /// under pressure — eviction was already a performance heuristic, never
  /// correctness (see the map comment at the top of this header).
  struct alignas(64) AffinityBucket {
    mutable InstrumentedMutex mu;
    std::unordered_map<uint64_t, uint32_t> pins;
    std::deque<uint64_t> fifo;
  };

  size_t PlaceNewClass(uint64_t fingerprint_hash,
                       const std::vector<size_t>* queue_depths,
                       bool* biased) const;
  AffinityBucket& BucketOf(uint64_t fingerprint_hash) const {
    return buckets_[fingerprint_hash & (kNumBuckets - 1)];
  }
  size_t BucketCapacity() const {
    return std::max<size_t>(1, config_.affinity_capacity / kNumBuckets);
  }

  size_t num_shards_;
  std::shared_ptr<const OptimizerContext> context_;
  RouterConfig config_;
  mutable AffinityBucket buckets_[kNumBuckets];
};

}  // namespace spores
