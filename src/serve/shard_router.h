// Canonical-form shard routing.
//
// A serving deployment runs N shard-local optimizer sessions; which shard a
// query lands on decides which plan cache and which warm e-graph it can
// reuse. Routing on the query text would scatter isomorphic queries (every
// resubmission draws fresh attribute names; equivalent queries can be
// written differently) across shards, duplicating saturation work N ways.
// The router therefore routes on the *canonical form*: it translates the
// query, builds the same canonical-form cache key the plan cache uses, and
// hashes the key's renaming-invariant fingerprint — so every member of an
// isomorphism class maps to the same shard, and a shard's plan cache sees
// a closed key population (the isolation the routing tests pin down).
//
// Queries whose RA term cannot be canonicalized (the plan cache bypasses
// those too) fall back to hashing the expression's structural hash plus the
// catalog fingerprint: still deterministic, just not isomorphism-stable.
//
// The by-product PlanCacheKey is returned with the route so the executing
// session can skip re-canonicalizing (see QueryOptions::key) — on a warm
// shard the whole optimize collapses to one cache probe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/optimizer/optimizer_context.h"
#include "src/optimizer/plan_cache.h"

namespace spores {

/// Routing decision for one query. The translation and key are by-products
/// the executing session reuses (QueryOptions::{translation,key}) so a
/// routed query is translated and canonicalized exactly once end to end.
struct RouteDecision {
  size_t shard = 0;
  /// The canonical-form cache key (error == canonicalization bypass; the
  /// query was routed on its structural fallback hash instead).
  StatusOr<PlanCacheKey> key = Status::Unsupported("not routed");
  /// The LA->RA translation the key was built from.
  StatusOr<RaProgram> program = Status::Unsupported("not routed");
  double seconds = 0.0;  ///< translate + canonicalize time spent routing
};

/// Stateless (beyond the shared context) and thread-safe: Route may be
/// called from any number of submitter threads concurrently.
class ShardRouter {
 public:
  ShardRouter(size_t num_shards, std::shared_ptr<const OptimizerContext> ctx);

  size_t num_shards() const { return num_shards_; }

  /// Routes one query. Deterministic: the same (expr, catalog) — or any
  /// isomorphic rewriting of it — always maps to the same shard.
  RouteDecision Route(const ExprPtr& expr, const Catalog& catalog) const;

  /// Stable 64-bit FNV-1a (not std::hash: shard assignment should not
  /// depend on the standard library's per-process salt).
  static uint64_t HashBytes(const std::string& bytes);

 private:
  size_t num_shards_;
  std::shared_ptr<const OptimizerContext> context_;
};

}  // namespace spores
