// Sharded serving pool: N worker threads, each owning one OptimizerSession
// (shard), behind a canonical-form ShardRouter — with an async, deadline-
// aware job lifecycle (PR 5) and a lock-free submission spine (PR 9).
//
// Architecture ("When More Cores Hurts" is the cautionary tale — naive
// shared-cache parallelism inverts scaling, so nothing mutable is shared):
//
//   Submit / SubmitAsync / BatchSubmit (any thread)
//        │  admission: reject on queue depth / backlog stall
//        │  route: canonicalize → fingerprint → affinity map
//        │         (new classes biased toward shallow queues)
//        ▼
//   per-shard lock-free MPSC queues ──► worker threads, one per shard
//        │  (priority levels;       │  expired jobs short-circuit to
//        │   deadline checked       │  kDeadlineExceeded at dequeue —
//        │   at dequeue)            │  they never enter Optimize
//        │ steal (back)             │  session.Optimize under the job's
//        └────────────────────────-─┘  StageBudget (deadline + cancel token)
//                                      │
//                                 ServeFuture completes: callbacks fire,
//                                 blocked get() calls wake
//
// Concurrency contract (PR 9 — see also README "Serving layer"):
//
//  * Submission is lock-free end to end: admission reads the per-shard
//    HotMirror (cache-line-padded atomics), the enqueue is a Vyukov MPSC
//    push (src/serve/shard_queue.h — one exchange + one release store, no
//    allocation: jobs are intrusive nodes), drain accounting is an atomic
//    increment, and the worker wakeup takes the parking mutex only when a
//    worker is actually asleep (Dekker-style epoch/parked protocol).
//  * Dequeue is single-consumer per shard, enforced by a per-shard
//    consumer-guard SpinLock: the owner takes lock() (uncontended: one
//    CAS), thieves take try_lock() and bounce to the next victim instead
//    of waiting — the bounded fallback lock confined to the steal path.
//    Priority levels are separate FIFO queues behind an atomic occupancy
//    bitmap; steal-oldest-from-deepest and the lone-job busy rule keep
//    their exact PR 4/8 semantics, re-verified under the victim's guard.
//  * Stats() is fully lock-free and WEAKLY CONSISTENT: every counter is a
//    relaxed atomic read, and the per-shard session/cache stats live in a
//    field-wise atomic mirror republished by the owning worker after each
//    job (not an atomic<shared_ptr> blob — libstdc++'s lock-bit protocol
//    for those is invisible to race checkers).
//    Counters are individually monotone and never torn, but one snapshot
//    may mix reads from different instants — e.g. a job can appear in
//    `completed` before its shard's `executed` shows it, and per-shard
//    sums can transiently disagree with pool totals. `completed` <=
//    `submitted` always holds (completed is read first; submitted only
//    grows). Anything needing a quiescent view should Drain() first.
//
//  * Async lifecycle: every submission returns a ServeFuture<OptimizedPlan>
//    (serve_future.h) carrying StatusOr — kDeadlineExceeded, kCancelled and
//    admission's kResourceExhausted are values, not exceptions. then()
//    registers completion callbacks; Cancel() stops queued jobs at dequeue
//    and in-flight jobs at the optimizer's budget checkpoints (the token
//    reaches the saturation runner and the ILP branch-and-bound).
//  * Deadlines: jobs carry an absolute Deadline from submit; queue wait
//    spends it too. At dequeue an expired job completes immediately; a
//    near-expired job degrades inside the session (clamped saturation,
//    greedy-instead-of-ILP) with provenance in OptimizedPlan::degraded.
//  * Admission control: when configured, a submission whose home queue is
//    at max depth — or stalled past the backlog threshold — is rejected up
//    front (kResourceExhausted) instead of joining a queue it would only
//    time out in.
//  * Shard affinity + load bias: known isomorphism classes always route to
//    their pinned shard (plan cache, warm e-graph); new classes are placed
//    on shallow queues under load (see shard_router.h). No two shards ever
//    populate caches for the same key.
//  * Work stealing: an idle worker takes the best job of the most
//    backlogged other queue — from queues holding two or more, OR holding a
//    lone job whose home worker has already been busy on its current
//    optimization longer than lone_steal_busy_seconds (a lone job must not
//    wait out a long saturation; under light load the floor still protects
//    cache warming). Stolen jobs execute on the thief's session with the
//    plan cache bypassed (QueryOptions::use_plan_cache=false) and the
//    thief's warm shared e-graph protected (preserve_shared_egraph).
//  * Warm restarts (PR 6): with PoolConfig::persist.dir set, each shard's
//    plan cache and saturated e-graph checkpoint to versioned snapshot
//    files (Checkpoint(); inserts between checkpoints are WAL-journaled),
//    and the constructor restores them on the next start — after
//    validating the format version and the rule-set/cost-model hashes.
//    Any mismatch or corruption collapses to a clean cold start with the
//    reason in ShardStats::cold_start; restore never fails construction.
//  * Batch dedupe, two levels: BatchSubmit first pre-groups members by
//    structural hash (exact resubmissions skip routing entirely — no
//    translate/canonicalize), then groups the remainder by canonical form
//    (fingerprint + polyterm isomorphism) so isomorphic members ride one
//    optimization. The shared job runs under the LOOSEST contract across
//    its members — best priority, latest deadline (none if any member has
//    none) — so dedupe can only improve a member's service level, never
//    fail it with a deadline or priority it didn't ask for.
//
// Every shared artifact (rules, e-matching trie, DimEnv) comes from the
// read-only OptimizerContext; see optimizer_context.h for the audited
// sharing contract. All pool methods are thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/optimizer/optimizer_session.h"
#include "src/persist/checkpoint.h"
#include "src/serve/serve_future.h"
#include "src/serve/shard_queue.h"
#include "src/serve/shard_router.h"
#include "src/util/contention.h"
#include "src/util/deadline.h"

namespace spores {

/// Job priorities: lower values run first within a queue. The pool keeps
/// ShardQueue::kPriorityLevels distinct levels (0 = most urgent); values
/// outside [0, kPriorityLevels) are clamped to the nearest level — the
/// conventional kPriority* constants all map within range.
inline constexpr int kPriorityHigh = 0;
inline constexpr int kPriorityNormal = 1;
inline constexpr int kPriorityLow = 2;

/// Queue-side admission thresholds; 0 disables a check. Fed by the same
/// lock-free per-shard mirrors PoolStats snapshots.
struct AdmissionConfig {
  /// Reject a submission when its home queue already holds this many jobs.
  size_t max_queue_depth = 0;
  /// Reject when the home queue has been STALLED longer than this: jobs
  /// waiting, and no dequeue for that long while they wait. Depth says how
  /// much work is piled up; a stall says the pile is not moving — both
  /// mean a new arrival would only wait to expire. Measured lock-free as
  /// now - max(last dequeue, instant the queue last became non-empty) —
  /// the elapsed time the CURRENT backlog has sat unserved. (Deliberately
  /// NOT any single waiter's raw age: under priority scheduling one
  /// starved low-priority job can age without bound while the queue
  /// drains high-priority traffic perfectly well.)
  double max_queue_age_seconds = 0.0;
  /// Memory-pressure shedding: reject kPriorityLow-and-below submissions
  /// (kResourceExhausted) while the pool-wide e-graph arena — summed over
  /// every shard's lock-free node-count mirror, refreshed after each job —
  /// exceeds this many nodes. 0 disables. High-priority traffic keeps
  /// flowing; the cheap-to-retry tail is shed first.
  size_t shed_arena_nodes = 0;
};

/// Shard supervision: a watchdog detects hung workers, and worker-top-level
/// exceptions / allocation failures poison the shard's session, which is
/// then rebuilt in place (warm-restored from its last checkpoint when
/// persistence is on) while peers drain its queue. Inert by default.
struct SupervisionConfig {
  /// Enables the watchdog thread and poison/rebuild handling.
  bool enable = false;
  /// A running job is declared hung once its worker has been busy on it
  /// longer than hang_grace x the job's deadline budget at start (jobs
  /// without a deadline use default_hang_seconds). The watchdog then fires
  /// the job's cancel token — saturation and ILP stop at their next budget
  /// checkpoint — and the job completes kDeadlineExceeded; the shard is
  /// treated as poisoned and rebuilt (its state was mid-flight when
  /// force-stopped).
  double hang_grace = 3.0;
  /// Hang threshold for jobs submitted without a deadline.
  double default_hang_seconds = 30.0;
  /// Watchdog poll cadence.
  double poll_seconds = 0.05;
};

/// Poison-query quarantine: queries whose canonical fingerprint has
/// crashed or hung shards `strikes` times are rejected at admission with
/// kFailedPrecondition instead of taking down another worker. The record
/// is bounded (FIFO eviction past `capacity`) and strikes expire after
/// `ttl_seconds`. Inert unless strikes > 0.
struct QuarantineConfig {
  size_t strikes = 0;  ///< offenses before rejection; 0 disables
  double ttl_seconds = 300.0;
  size_t capacity = 1024;
};

/// Warm-restart persistence (src/persist): one snapshot + journal file pair
/// per shard under `dir`. An empty dir disables persistence entirely (no
/// files, no listener, zero serving overhead).
struct PersistenceConfig {
  /// Snapshot/journal directory (created if missing); empty disables.
  std::string dir;
  /// WAL-journal every organic plan-cache insert (flushed per record), so
  /// plans optimized between checkpoints survive a crash too.
  bool journal_inserts = true;
  /// Run a full Checkpoint() in the destructor, after the final drain.
  bool checkpoint_on_shutdown = true;
};

struct PoolConfig {
  size_t num_shards = 8;
  /// Per-shard session config; defaults to the context's base_config.
  std::optional<SessionConfig> session;
  /// Allow idle workers to execute other shards' queued jobs.
  bool enable_work_stealing = true;
  /// Steal a lone queued job once its home worker has been busy on its
  /// current job longer than this (depth>=2 queues are always stealable).
  /// Negative disables lone-job stealing (the strict PR 4 floor).
  double lone_steal_busy_seconds = 0.1;
  /// Give the router a queue-depth snapshot at submit so NEW isomorphism
  /// classes are placed on shallow queues; known classes keep their pinned
  /// shard regardless.
  bool enable_load_bias = true;
  /// Background upgrade of degraded plans: an idle worker whose own queue
  /// is empty spends the lull upgrading one deadline-degraded cached plan
  /// to a full ILP extraction against its warm e-graph (never competing
  /// with queued traffic — a runnable job always wins the loop iteration).
  bool upgrade_when_shallow = true;
  RouterConfig router;
  AdmissionConfig admission;
  PersistenceConfig persist;
  SupervisionConfig supervision;
  QuarantineConfig quarantine;
};

/// One query for Submit/BatchSubmit. The catalog is shared-ptr'd because
/// the job outlives the submit call (workers read it when the job runs).
struct ServeRequest {
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
  /// Absolute expiry for this query; queue wait counts against it. Expired
  /// jobs short-circuit to kDeadlineExceeded at dequeue; a running job's
  /// remaining budget steers saturation/extraction (StageBudget). Default:
  /// none.
  Deadline deadline = {};
  int priority = kPriorityNormal;  ///< lower runs first (kPriority*)
};

/// Per-shard observability snapshot. Weakly consistent: see Stats().
struct ShardStats {
  size_t executed = 0;      ///< jobs run on this shard's session
  size_t steals = 0;        ///< jobs this worker stole from other queues
  size_t stolen_from = 0;   ///< jobs other workers took from this queue
  size_t expired = 0;       ///< jobs this worker expired at dequeue (no run)
  size_t cancelled = 0;     ///< jobs this worker short-circuited as cancelled
  size_t rejected = 0;      ///< submissions admission bounced off this queue
  size_t queue_depth = 0;   ///< jobs waiting at snapshot time
  bool busy = false;        ///< worker mid-Optimize at snapshot time
  SessionStats session;     ///< the shard session's cumulative counters
  PlanCacheStats cache;     ///< the shard plan cache's counters
  size_t cache_entries = 0;
  /// Contended acquisitions of this shard's consumer-guard SpinLock:
  /// thieves bouncing off a busy dequeue, or the owner finding a thief
  /// inside. The scaling study's per-shard contention signal.
  uint64_t pop_lock_contended = 0;
  /// How this shard came up (kWarmRestore = snapshot/journal state loaded;
  /// kDisabled = persistence not configured). Fixed at construction.
  ColdStartReason cold_start = ColdStartReason::kDisabled;
  std::string cold_start_detail;  ///< human-readable cause for cold starts
  /// Age of the restored snapshot at pool construction; -1 when no snapshot
  /// was restored (cold start, or a journal-only warm restore).
  int64_t snapshot_age_seconds = -1;
  /// Supervision: how often this shard's session was rebuilt in place, and
  /// why (a rebuild has exactly one cause, so the causes sum to restarts).
  size_t restarts = 0;
  size_t restart_poisoned = 0;   ///< cause: exception escaped the optimizer
  size_t restart_bad_alloc = 0;  ///< cause: allocation failure
  size_t restart_hangs = 0;      ///< cause: watchdog-detected hang
  bool poisoned = false;  ///< mid-rebuild at snapshot time (queue stealable)
};

/// Pool-wide stats: per-shard snapshots plus batch-level counters. Weakly
/// consistent (lock-free snapshot); see Stats() for the exact contract.
struct PoolStats {
  std::vector<ShardStats> shards;
  size_t submitted = 0;   ///< jobs enqueued (after dedupe, minus rejections)
  size_t dedup_hits = 0;  ///< batch members that rode another member's job
  /// Batch members pre-grouped by structural hash — exact resubmissions
  /// that skipped routing (translate/canonicalize) entirely. Disjoint from
  /// dedup_hits.
  size_t pregroup_hits = 0;
  size_t completed = 0;
  size_t quarantined = 0;  ///< submissions rejected by the poison blacklist
  size_t shed = 0;  ///< low-priority submissions shed under memory pressure

  /// Contention telemetry (PR 9): slow-path counters on every lock the
  /// serving spine still takes, plus parking activity. All monotone.
  size_t park_events = 0;  ///< times a worker entered the parking lot
  uint64_t pop_lock_contended = 0;   ///< sum of shard consumer-guard hits
  uint64_t router_contended = 0;     ///< router affinity-bucket mutex hits
  uint64_t intern_contended = 0;     ///< symbol intern-shard mutex hits
  uint64_t dim_write_contended = 0;  ///< DimEnv bucket writer-lock hits

  /// Aggregates across shards (sums; hit rate recomputed from sums).
  size_t TotalExecuted() const;
  size_t TotalSteals() const;
  size_t TotalExpired() const;
  size_t TotalCancelled() const;
  size_t TotalRejected() const;
  size_t TotalRestarts() const;  ///< shard sessions rebuilt by supervision
  size_t TotalRestoredPlans() const;    ///< plan-cache entries from snapshots
  size_t TotalRestoredClasses() const;  ///< e-classes rebuilt from snapshots
  /// Feedback-loop aggregates (RecordExecution / background upgrades).
  size_t TotalRecalibrations() const;
  size_t TotalDriftInvalidations() const;
  size_t TotalReExtractions() const;
  size_t TotalPlanUpgrades() const;
  double CacheHitRate() const;  ///< hits / (hits+misses) over all shards
  std::string ToString() const;
};

/// The sharded serving layer. Construction spawns the workers; destruction
/// drains every queue, then joins them (no job is abandoned — every future
/// obtained from Submit/SubmitAsync/BatchSubmit becomes ready).
class SessionPool {
 public:
  explicit SessionPool(std::shared_ptr<const OptimizerContext> context,
                       PoolConfig config = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Admits, routes and enqueues one request. Always returns a live future:
  /// an admission rejection completes it immediately with
  /// kResourceExhausted. Thread-safe; the enqueue itself is lock-free.
  ServeFuture<OptimizedPlan> SubmitAsync(const ServeRequest& request);

  /// Convenience: SubmitAsync with no deadline and normal priority.
  ServeFuture<OptimizedPlan> Submit(ExprPtr expr,
                                    std::shared_ptr<const Catalog> catalog);

  /// Routes a whole batch with two-level dedupe (structural pre-grouping,
  /// then canonical form): members whose canonical forms are isomorphic
  /// (and whose referenced inputs agree — the fingerprint pins those)
  /// share one optimization, run under the loosest deadline and best
  /// priority of the group. Returns one future per request, index-aligned;
  /// each is a member handle on the shared job (results — and rejections —
  /// are shared; Cancel only votes).
  std::vector<ServeFuture<OptimizedPlan>> BatchSubmit(
      const std::vector<ServeRequest>& batch);

  /// Blocks until every admitted job has completed, then flushes any
  /// pending journal writes to the OS (a drained pool's journaled state is
  /// on disk, not in a stdio buffer).
  void Drain();

  /// Feeds one executed plan's observations back into the pool (the
  /// observe half of the observe -> calibrate -> re-extract loop; build
  /// the record with MakeExecutionFeedback, src/serve/execution_feedback.h).
  /// The record is routed to the shard that owns the plan's cache entry —
  /// its router affinity pin when one survives, the stable fingerprint
  /// hash otherwise — and processed by that shard's OWN worker between
  /// jobs, so sessions stay single-threaded. Asynchronous: the call is an
  /// enqueue; Drain() waits for pending feedback like any other work.
  /// Effects land in SessionStats::{recalibrations, drift_invalidations,
  /// re_extractions}; drift re-optimization re-extracts against the warm
  /// e-graph and never re-saturates. Thread-safe.
  void RecordExecution(ExecutionFeedback feedback);

  /// Writes a full snapshot of every shard through the checkpoint protocol
  /// (see src/persist/checkpoint.h): each shard's plan cache and shared
  /// e-graph are captured ON ITS OWN WORKER THREAD between jobs — a short
  /// per-shard pause, never a global stop-the-world — with its journal
  /// rotated at the same serialization point, then serialized and written
  /// on parallel checkpoint threads. Serving continues throughout. Returns
  /// kFailedPrecondition when persistence is not configured. Must not be
  /// called from a pool worker thread (the capture would deadlock on the
  /// very worker it waits for).
  Status Checkpoint();

  bool persistence_enabled() const { return manager_ != nullptr; }

  /// Lock-free snapshot of per-shard and pool-wide counters. Never blocks
  /// — not on a running optimization, not on a submit storm, not on
  /// another Stats() call.
  ///
  /// Weak-consistency contract: every value is read atomically (no torn
  /// reads) and every counter is individually monotone, but the snapshot
  /// as a whole is NOT a single instant — fields may mix states from
  /// moments a few microseconds apart. Guaranteed: completed <= submitted.
  /// NOT guaranteed: per-shard sums equal to pool totals, queue_depth
  /// consistent with executed, or the session/cache mirror (published by the
  /// worker after each job) reflecting the most recent job. Drain() first
  /// for a quiescent, exact view.
  PoolStats Stats() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }

 private:
  using Future = ServeFuture<OptimizedPlan>;
  using FutureState = Future::State;

  /// A queued query. Jobs are intrusive MPSC nodes: ownership passes from
  /// the submitting thread into the lock-free shard queue (release()) and
  /// back out at dequeue (the popping worker re-wraps the raw node). After
  /// a drained destructor every pushed job has been popped.
  struct Job : MpscNode {
    ExprPtr expr;
    std::shared_ptr<const Catalog> catalog;
    /// Router by-products (when canonicalizable): the executing session
    /// probes/fills its cache with exactly this key and reuses the
    /// translation on a miss, so a query is translated once end to end.
    std::optional<PlanCacheKey> key;
    std::optional<RaProgram> translation;
    size_t home_shard = 0;
    int priority = kPriorityNormal;
    Deadline deadline;
    std::shared_ptr<FutureState> state;  ///< result + callbacks + cancel
  };

  /// Everything the submit hot path reads or writes about a shard, padded
  /// to its own cache line so N submitting threads sampling every shard's
  /// depth never false-share with each other or with worker-side state
  /// (satellite of PR 9: this unifies the old separate depth / arena_nodes
  /// mirrors and the stall clocks into one struct).
  struct alignas(64) HotMirror {
    /// Queue depth. Incremented BEFORE the lock-free push, decremented
    /// AFTER a successful pop — so depth == 0 proves the queue is empty,
    /// while depth > 0 with an empty-looking queue means a push is still
    /// in flight (the consumer retries; see shard_queue.h).
    std::atomic<size_t> depth{0};
    /// Shared e-graph node count, refreshed by the worker after each job;
    /// summed lock-free at admission for memory-pressure shedding.
    std::atomic<size_t> arena_nodes{0};
    /// When a job was last popped from this queue (by owner or thief);
    /// with nonempty_since_ns, the lock-free stall signal. 0 = never.
    std::atomic<int64_t> last_pop_ns{0};
    /// When the queue last transitioned empty -> non-empty (depth 0 -> 1).
    std::atomic<int64_t> nonempty_since_ns{0};
  };

  /// Worker-side session/cache counters, re-published field-by-field after
  /// each job so Stats() reads them lock-free. A field-wise relaxed-atomic
  /// mirror rather than an atomic<shared_ptr> blob: every field is written
  /// only by the shard's owning worker and read tear-free by Stats(), which
  /// is exactly the documented weak-consistency contract (individually
  /// monotone counters that may mix instants). libstdc++'s
  /// atomic<shared_ptr> uses an internal lock-bit protocol that race
  /// checkers cannot model, so the blob form was not TSan-clean.
  struct SessionSnapshot {
    // SessionStats mirror.
    std::atomic<size_t> queries{0};
    std::atomic<size_t> cache_hits{0};
    std::atomic<size_t> cache_misses{0};
    std::atomic<size_t> fallbacks{0};
    std::atomic<size_t> saturations{0};
    std::atomic<size_t> graph_reuses{0};
    std::atomic<size_t> graph_resets{0};
    std::atomic<size_t> compactions{0};
    std::atomic<size_t> arena_high_water{0};
    std::atomic<size_t> restored_plans{0};
    std::atomic<size_t> restored_classes{0};
    std::atomic<size_t> recalibrations{0};
    std::atomic<size_t> drift_invalidations{0};
    std::atomic<size_t> re_extractions{0};
    std::atomic<size_t> plan_upgrades{0};
    std::atomic<size_t> restored_calibration_cells{0};
    std::atomic<double> compile_seconds{0.0};
    // PlanCacheStats mirror.
    std::atomic<size_t> cache_lookups_hit{0};
    std::atomic<size_t> cache_lookups_miss{0};
    std::atomic<size_t> cache_insertions{0};
    std::atomic<size_t> cache_evictions{0};
    std::atomic<size_t> cache_entries{0};
  };

  struct Shard {
    HotMirror hot;  ///< first member: keeps its line at a known offset
    /// Lock-free MPSC job queue, one FIFO per priority level.
    ShardQueue queue;
    /// Consumer guard: serializes dequeues (the queue is single-consumer).
    /// The owner takes lock(); thieves take try_lock() and bounce. Its
    /// contended() counter feeds ShardStats::pop_lock_contended.
    SpinLock pop_lock;
    /// Relaxed per-shard counters; written by whichever worker performs
    /// the event, aggregated lock-free by Stats().
    std::atomic<size_t> executed{0};
    std::atomic<size_t> steals{0};
    std::atomic<size_t> stolen_from{0};
    std::atomic<size_t> expired{0};
    std::atomic<size_t> cancelled{0};
    std::atomic<size_t> rejected{0};
    /// Worker-busy signal for lone-job stealing and stats: set around the
    /// session call, read lock-free by thieves and Stats().
    std::atomic<bool> busy{false};
    std::atomic<int64_t> busy_since_ns{0};
    /// Set by the worker the moment a job poisons this session, cleared
    /// when the in-place rebuild finishes. While set, peers may steal from
    /// this queue at ANY depth (its owner is busy rebuilding).
    std::atomic<bool> poisoned{false};
    /// Rebuild counters (owner-written, relaxed; causes sum to restarts).
    std::atomic<size_t> restarts{0};
    std::atomic<size_t> restart_poisoned{0};
    std::atomic<size_t> restart_bad_alloc{0};
    std::atomic<size_t> restart_hangs{0};
    /// Session/cache stats mirror, re-published by the owning worker after
    /// each job (and each rebuild/restore). Stats() reads it lock-free.
    alignas(64) SessionSnapshot snapshot;
    /// The session itself: touched only by the worker thread that owns
    /// this shard (stolen jobs run on the *thief's* session).
    std::unique_ptr<OptimizerSession> session;
    std::thread worker;
    /// Control-plane state (cold paths only), still mutex-guarded: the
    /// checkpoint control slot and the watchdog's view of the running job.
    /// has_control lets the worker's hot loop skip the mutex entirely.
    mutable std::mutex mu;
    std::function<void()> control;
    std::atomic<bool> has_control{false};
    /// Execution-feedback inbox: RecordExecution appends from executing
    /// threads; the owning worker drains it between jobs (the session is
    /// touched by exactly one thread, same as jobs and control tasks).
    /// Mutex-guarded — feedback arrives at execution granularity, a cold
    /// path next to the lock-free submission spine; has_feedback keeps
    /// the worker's idle loop off the mutex.
    std::mutex feedback_mu;
    std::deque<ExecutionFeedback> feedback;
    std::atomic<bool> has_feedback{false};
    /// Warm-restart provenance, written once before the worker spawns.
    ColdStartReason cold_start = ColdStartReason::kDisabled;
    std::string cold_start_detail;
    int64_t snapshot_age_seconds = -1;
    /// Supervision view of the currently running job, registered by RunJob
    /// around Optimize (guarded by mu). The watchdog reads it under mu and
    /// copies the shared state out before acting — the Job itself stays
    /// owned by the worker and is never touched from outside.
    struct RunningJob {
      std::shared_ptr<FutureState> state;
      double hang_seconds = 0;  ///< this job's hang threshold
      int64_t started_ns = 0;
      uint64_t quarantine_hash = 0;
      bool hang_flagged = false;  ///< watchdog fired the cancel token
    };
    std::optional<RunningJob> running;
  };

  /// Admission + enqueue; the returned future is the job's (or an
  /// immediately-rejected one). Lock-free on the admitted path.
  Future Enqueue(std::unique_ptr<Job> job);
  /// Lock-free queue-depth snapshot for router load bias. Returns a
  /// thread-local buffer (valid until this thread's next call).
  const std::vector<size_t>& QueueDepths() const;
  /// Wraps a shared job's future in a member handle (deduped batches):
  /// results forward to it, and Cancel completes only this handle until
  /// every member of the job has voted (see serve_future.h).
  Future AttachMember(const Future& job_future);
  void WorkerLoop(size_t shard_index);
  /// Pops the next job for worker `self`, highest priority (FIFO within a
  /// level) first: own queue, else steal the best job of the most
  /// backlogged stealable other queue. Sets *retry_soon when the caller
  /// should park with a timeout instead of indefinitely: a lone job
  /// pending its busy threshold, or an in-flight push observed mid-pop.
  std::unique_ptr<Job> NextJob(size_t self, bool* stolen, bool* retry_soon);
  /// Completes a dequeued-but-not-run job (expired / cancelled) and keeps
  /// the drain accounting live.
  void DisposeJob(size_t self, Job& job, Status status);
  void RunJob(size_t self, Job& job, bool stolen);
  void FinishJob();  ///< drain accounting after any completion
  /// Bumps the work epoch and wakes parked workers. Touches park_mu_ only
  /// when someone is actually parked (the common enqueue pays two atomic
  /// ops). The seq_cst epoch/parked pair is the missed-wakeup guard: a
  /// worker re-checks the epoch after registering as parked, so either it
  /// sees our bump, or we see its registration.
  void WakeWorkers();
  /// Publishes `shard`'s session/cache stats mirror + arena mirror. Owner
  /// worker thread (or pre-worker constructor) only.
  void PublishSnapshot(Shard& shard);
  /// Constructor-time restore: loads every shard's snapshot + journals,
  /// repopulates sessions/router, records cold-start provenance. Runs
  /// before any worker spawns (single-threaded window — no locks needed).
  void RestoreShards();
  /// Loads shard `index`'s snapshot + journals into `session` (dims,
  /// graph rebuild, cache replay, router re-pins) — the per-shard half of
  /// RestoreShards, reused by RebuildShard for warm in-place rebuilds.
  CheckpointManager::Restore RestoreIntoSession(size_t index,
                                                OptimizerSession& session);
  /// Why a shard session was rebuilt (one cause per rebuild).
  enum class RestartCause { kPoisoned, kBadAlloc, kHang };
  /// Replaces shard `self`'s poisoned session with a fresh one built from
  /// the shared context, warm-restored from its last checkpoint when
  /// persistence is on. Runs ON THE SHARD'S OWN WORKER THREAD, between
  /// jobs — the only thread allowed to touch the session.
  void RebuildShard(size_t self, RestartCause cause);
  /// The fingerprint-hash identity quarantine tracks for a job: canonical
  /// fingerprint when the router produced a key, structural expression
  /// hash otherwise (still deterministic for exact resubmissions).
  static uint64_t QuarantineHash(const Job& job);
  bool QuarantineRejects(uint64_t hash);  ///< check at admission
  void QuarantineStrike(uint64_t hash);   ///< record a crash/hang
  void WatchdogLoop();
  /// Runs `fn` against shard's session ON ITS OWNER WORKER THREAD, between
  /// jobs, and blocks until it has run. Caller must hold checkpoint_mu_.
  void WithShardSession(size_t shard,
                        const std::function<void(OptimizerSession&)>& fn);
  /// Runs the shard's pending control task, if any (called by its worker).
  void RunControl(size_t self);
  /// Drains shard `self`'s execution-feedback inbox into its session
  /// (calibration + drift re-extraction), republishing the stats mirror
  /// and keeping the drain accounting live. Owner worker thread only.
  void DrainFeedback(size_t self);

  std::shared_ptr<const OptimizerContext> context_;
  PoolConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Snapshot/journal lifecycle (null when persist.dir is empty).
  std::unique_ptr<CheckpointManager> manager_;
  std::mutex checkpoint_mu_;  ///< serializes Checkpoint() calls

  /// Parking lot. Producers never touch park_mu_ unless parked_ > 0 (see
  /// WakeWorkers); workers take it only to actually sleep. Both epoch and
  /// parked are seq_cst at the handshake points — the classic two-flag
  /// store-then-check-the-other protocol needs the total order.
  std::atomic<uint64_t> work_epoch_{0};
  std::atomic<uint32_t> parked_{0};
  std::atomic<uint64_t> park_events_{0};
  mutable std::mutex park_mu_;
  std::condition_variable park_cv_;
  bool shutdown_ = false;  ///< guarded by park_mu_ (checked while parking)

  /// Drain accounting, lock-free on the hot path: submitted_ is bumped
  /// BEFORE a job becomes visible in its queue (so completed_ can never
  /// pass it), completed_ after any completion; done_mu_/done_cv_ exist
  /// only so Drain() can sleep, and FinishJob touches them only on the
  /// completion that reaches completed == submitted.
  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> dedup_hits_{0};
  std::atomic<size_t> pregroup_hits_{0};
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;

  /// Poison-query quarantine: fingerprint hash -> strike record. Bounded
  /// (FIFO eviction) and TTL'd; see QuarantineConfig.
  struct QuarantineEntry {
    size_t strikes = 0;
    int64_t last_strike_ns = 0;
  };
  mutable std::mutex quarantine_mu_;
  std::unordered_map<uint64_t, QuarantineEntry> quarantine_;
  std::deque<uint64_t> quarantine_order_;  ///< FIFO for capacity eviction
  std::atomic<size_t> quarantined_{0};
  std::atomic<size_t> shed_{0};

  /// Watchdog thread (supervision.enable only).
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace spores
