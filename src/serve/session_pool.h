// Sharded serving pool: N worker threads, each owning one OptimizerSession
// (shard), behind a canonical-form ShardRouter — with an async, deadline-
// aware job lifecycle (PR 5).
//
// Architecture ("When More Cores Hurts" is the cautionary tale — naive
// shared-cache parallelism inverts scaling, so nothing mutable is shared):
//
//   Submit / SubmitAsync / BatchSubmit (any thread)
//        │  admission: reject on queue depth / backlog age
//        │  route: canonicalize → fingerprint → affinity map
//        │         (new classes biased toward shallow queues)
//        ▼
//   per-shard MPSC queues ──► worker threads, one per shard
//        │  (priority order;     │  expired jobs short-circuit to
//        │   deadline checked    │  kDeadlineExceeded at dequeue —
//        │   at dequeue)         │  they never enter Optimize
//        │ steal (back)          │  session.Optimize under the job's
//        └───────────────────────┘  StageBudget (deadline + cancel token)
//                                      │
//                                 ServeFuture completes: callbacks fire,
//                                 blocked get() calls wake
//
//  * Async lifecycle: every submission returns a ServeFuture<OptimizedPlan>
//    (serve_future.h) carrying StatusOr — kDeadlineExceeded, kCancelled and
//    admission's kResourceExhausted are values, not exceptions. then()
//    registers completion callbacks; Cancel() stops queued jobs at dequeue
//    and in-flight jobs at the optimizer's budget checkpoints (the token
//    reaches the saturation runner and the ILP branch-and-bound).
//  * Deadlines: jobs carry an absolute Deadline from submit; queue wait
//    spends it too. At dequeue an expired job completes immediately; a
//    near-expired job degrades inside the session (clamped saturation,
//    greedy-instead-of-ILP) with provenance in OptimizedPlan::degraded.
//  * Admission control: when configured, a submission whose home queue is
//    at max depth — or whose oldest waiter has aged past the backlog
//    threshold — is rejected up front (kResourceExhausted) instead of
//    joining a queue it would only time out in.
//  * Shard affinity + load bias: known isomorphism classes always route to
//    their pinned shard (plan cache, warm e-graph); new classes are placed
//    on shallow queues under load (see shard_router.h). No two shards ever
//    populate caches for the same key.
//  * Work stealing: an idle worker takes the best job of the most
//    backlogged other queue — from queues holding two or more, OR holding a
//    lone job whose home worker has already been busy on its current
//    optimization longer than lone_steal_busy_seconds (a lone job must not
//    wait out a long saturation; under light load the floor still protects
//    cache warming). Stolen jobs execute on the thief's session with the
//    plan cache bypassed (QueryOptions::use_plan_cache=false) and the
//    thief's warm shared e-graph protected (preserve_shared_egraph).
//  * Warm restarts (PR 6): with PoolConfig::persist.dir set, each shard's
//    plan cache and saturated e-graph checkpoint to versioned snapshot
//    files (Checkpoint(); inserts between checkpoints are WAL-journaled),
//    and the constructor restores them on the next start — after
//    validating the format version and the rule-set/cost-model hashes.
//    Any mismatch or corruption collapses to a clean cold start with the
//    reason in ShardStats::cold_start; restore never fails construction.
//  * Batch dedupe, two levels: BatchSubmit first pre-groups members by
//    structural hash (exact resubmissions skip routing entirely — no
//    translate/canonicalize), then groups the remainder by canonical form
//    (fingerprint + polyterm isomorphism) so isomorphic members ride one
//    optimization. The shared job runs under the LOOSEST contract across
//    its members — best priority, latest deadline (none if any member has
//    none) — so dedupe can only improve a member's service level, never
//    fail it with a deadline or priority it didn't ask for.
//
// Every shared artifact (rules, e-matching trie, DimEnv) comes from the
// read-only OptimizerContext; see optimizer_context.h for the audited
// sharing contract. All pool methods are thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/optimizer/optimizer_session.h"
#include "src/persist/checkpoint.h"
#include "src/serve/serve_future.h"
#include "src/serve/shard_router.h"
#include "src/util/deadline.h"

namespace spores {

/// Job priorities: lower values run first within a queue. Any int works;
/// these are the conventional levels.
inline constexpr int kPriorityHigh = 0;
inline constexpr int kPriorityNormal = 1;
inline constexpr int kPriorityLow = 2;

/// Queue-side admission thresholds; 0 disables a check. Fed by the same
/// counters PoolStats snapshots.
struct AdmissionConfig {
  /// Reject a submission when its home queue already holds this many jobs.
  size_t max_queue_depth = 0;
  /// Reject when the home queue has been STALLED longer than this: jobs
  /// waiting, and no dequeue since the oldest waiter was admitted. Depth
  /// says how much work is piled up; a stall says the pile is not moving —
  /// both mean a new arrival would only wait to expire. (Deliberately NOT
  /// the oldest waiter's raw age: under priority scheduling one starved
  /// low-priority job can age without bound while the queue drains
  /// high-priority traffic perfectly well.)
  double max_queue_age_seconds = 0.0;
  /// Memory-pressure shedding: reject kPriorityLow-and-below submissions
  /// (kResourceExhausted) while the pool-wide e-graph arena — summed over
  /// every shard's lock-free node-count mirror, refreshed after each job —
  /// exceeds this many nodes. 0 disables. High-priority traffic keeps
  /// flowing; the cheap-to-retry tail is shed first.
  size_t shed_arena_nodes = 0;
};

/// Shard supervision: a watchdog detects hung workers, and worker-top-level
/// exceptions / allocation failures poison the shard's session, which is
/// then rebuilt in place (warm-restored from its last checkpoint when
/// persistence is on) while peers drain its queue. Inert by default.
struct SupervisionConfig {
  /// Enables the watchdog thread and poison/rebuild handling.
  bool enable = false;
  /// A running job is declared hung once its worker has been busy on it
  /// longer than hang_grace x the job's deadline budget at start (jobs
  /// without a deadline use default_hang_seconds). The watchdog then fires
  /// the job's cancel token — saturation and ILP stop at their next budget
  /// checkpoint — and the job completes kDeadlineExceeded; the shard is
  /// treated as poisoned and rebuilt (its state was mid-flight when
  /// force-stopped).
  double hang_grace = 3.0;
  /// Hang threshold for jobs submitted without a deadline.
  double default_hang_seconds = 30.0;
  /// Watchdog poll cadence.
  double poll_seconds = 0.05;
};

/// Poison-query quarantine: queries whose canonical fingerprint has
/// crashed or hung shards `strikes` times are rejected at admission with
/// kFailedPrecondition instead of taking down another worker. The record
/// is bounded (FIFO eviction past `capacity`) and strikes expire after
/// `ttl_seconds`. Inert unless strikes > 0.
struct QuarantineConfig {
  size_t strikes = 0;  ///< offenses before rejection; 0 disables
  double ttl_seconds = 300.0;
  size_t capacity = 1024;
};

/// Warm-restart persistence (src/persist): one snapshot + journal file pair
/// per shard under `dir`. An empty dir disables persistence entirely (no
/// files, no listener, zero serving overhead).
struct PersistenceConfig {
  /// Snapshot/journal directory (created if missing); empty disables.
  std::string dir;
  /// WAL-journal every organic plan-cache insert (flushed per record), so
  /// plans optimized between checkpoints survive a crash too.
  bool journal_inserts = true;
  /// Run a full Checkpoint() in the destructor, after the final drain.
  bool checkpoint_on_shutdown = true;
};

struct PoolConfig {
  size_t num_shards = 8;
  /// Per-shard session config; defaults to the context's base_config.
  std::optional<SessionConfig> session;
  /// Allow idle workers to execute other shards' queued jobs.
  bool enable_work_stealing = true;
  /// Steal a lone queued job once its home worker has been busy on its
  /// current job longer than this (depth>=2 queues are always stealable).
  /// Negative disables lone-job stealing (the strict PR 4 floor).
  double lone_steal_busy_seconds = 0.1;
  /// Give the router a queue-depth snapshot at submit so NEW isomorphism
  /// classes are placed on shallow queues; known classes keep their pinned
  /// shard regardless.
  bool enable_load_bias = true;
  RouterConfig router;
  AdmissionConfig admission;
  PersistenceConfig persist;
  SupervisionConfig supervision;
  QuarantineConfig quarantine;
};

/// One query for Submit/BatchSubmit. The catalog is shared-ptr'd because
/// the job outlives the submit call (workers read it when the job runs).
struct ServeRequest {
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
  /// Absolute expiry for this query; queue wait counts against it. Expired
  /// jobs short-circuit to kDeadlineExceeded at dequeue; a running job's
  /// remaining budget steers saturation/extraction (StageBudget). Default:
  /// none.
  Deadline deadline = {};
  int priority = kPriorityNormal;  ///< lower runs first (kPriority*)
};

/// Per-shard observability snapshot.
struct ShardStats {
  size_t executed = 0;      ///< jobs run on this shard's session
  size_t steals = 0;        ///< jobs this worker stole from other queues
  size_t stolen_from = 0;   ///< jobs other workers took from this queue
  size_t expired = 0;       ///< jobs this worker expired at dequeue (no run)
  size_t cancelled = 0;     ///< jobs this worker short-circuited as cancelled
  size_t rejected = 0;      ///< submissions admission bounced off this queue
  size_t queue_depth = 0;   ///< jobs waiting at snapshot time
  bool busy = false;        ///< worker mid-Optimize at snapshot time
  SessionStats session;     ///< the shard session's cumulative counters
  PlanCacheStats cache;     ///< the shard plan cache's counters
  size_t cache_entries = 0;
  /// How this shard came up (kWarmRestore = snapshot/journal state loaded;
  /// kDisabled = persistence not configured). Fixed at construction.
  ColdStartReason cold_start = ColdStartReason::kDisabled;
  std::string cold_start_detail;  ///< human-readable cause for cold starts
  /// Age of the restored snapshot at pool construction; -1 when no snapshot
  /// was restored (cold start, or a journal-only warm restore).
  int64_t snapshot_age_seconds = -1;
  /// Supervision: how often this shard's session was rebuilt in place, and
  /// why (a rebuild has exactly one cause, so the causes sum to restarts).
  size_t restarts = 0;
  size_t restart_poisoned = 0;   ///< cause: exception escaped the optimizer
  size_t restart_bad_alloc = 0;  ///< cause: allocation failure
  size_t restart_hangs = 0;      ///< cause: watchdog-detected hang
  bool poisoned = false;  ///< mid-rebuild at snapshot time (queue stealable)
};

/// Pool-wide stats: per-shard snapshots plus batch-level counters.
struct PoolStats {
  std::vector<ShardStats> shards;
  size_t submitted = 0;   ///< jobs enqueued (after dedupe, minus rejections)
  size_t dedup_hits = 0;  ///< batch members that rode another member's job
  /// Batch members pre-grouped by structural hash — exact resubmissions
  /// that skipped routing (translate/canonicalize) entirely. Disjoint from
  /// dedup_hits.
  size_t pregroup_hits = 0;
  size_t completed = 0;
  size_t quarantined = 0;  ///< submissions rejected by the poison blacklist
  size_t shed = 0;  ///< low-priority submissions shed under memory pressure

  /// Aggregates across shards (sums; hit rate recomputed from sums).
  size_t TotalExecuted() const;
  size_t TotalSteals() const;
  size_t TotalExpired() const;
  size_t TotalCancelled() const;
  size_t TotalRejected() const;
  size_t TotalRestarts() const;  ///< shard sessions rebuilt by supervision
  size_t TotalRestoredPlans() const;    ///< plan-cache entries from snapshots
  size_t TotalRestoredClasses() const;  ///< e-classes rebuilt from snapshots
  double CacheHitRate() const;  ///< hits / (hits+misses) over all shards
  std::string ToString() const;
};

/// The sharded serving layer. Construction spawns the workers; destruction
/// drains every queue, then joins them (no job is abandoned — every future
/// obtained from Submit/SubmitAsync/BatchSubmit becomes ready).
class SessionPool {
 public:
  explicit SessionPool(std::shared_ptr<const OptimizerContext> context,
                       PoolConfig config = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Admits, routes and enqueues one request. Always returns a live future:
  /// an admission rejection completes it immediately with
  /// kResourceExhausted. Thread-safe.
  ServeFuture<OptimizedPlan> SubmitAsync(const ServeRequest& request);

  /// Convenience: SubmitAsync with no deadline and normal priority.
  ServeFuture<OptimizedPlan> Submit(ExprPtr expr,
                                    std::shared_ptr<const Catalog> catalog);

  /// Routes a whole batch with two-level dedupe (structural pre-grouping,
  /// then canonical form): members whose canonical forms are isomorphic
  /// (and whose referenced inputs agree — the fingerprint pins those)
  /// share one optimization, run under the loosest deadline and best
  /// priority of the group. Returns one future per request, index-aligned;
  /// each is a member handle on the shared job (results — and rejections —
  /// are shared; Cancel only votes).
  std::vector<ServeFuture<OptimizedPlan>> BatchSubmit(
      const std::vector<ServeRequest>& batch);

  /// Blocks until every admitted job has completed, then flushes any
  /// pending journal writes to the OS (a drained pool's journaled state is
  /// on disk, not in a stdio buffer).
  void Drain();

  /// Writes a full snapshot of every shard through the checkpoint protocol
  /// (see src/persist/checkpoint.h): each shard's plan cache and shared
  /// e-graph are captured ON ITS OWN WORKER THREAD between jobs — a short
  /// per-shard pause, never a global stop-the-world — with its journal
  /// rotated at the same serialization point, then serialized and written
  /// on parallel checkpoint threads. Serving continues throughout. Returns
  /// kFailedPrecondition when persistence is not configured. Must not be
  /// called from a pool worker thread (the capture would deadlock on the
  /// very worker it waits for).
  Status Checkpoint();

  bool persistence_enabled() const { return manager_ != nullptr; }

  /// Snapshot of per-shard and pool-wide counters. Never blocks on a
  /// running optimization (session stats are snapshotted by the worker
  /// after each job).
  PoolStats Stats() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }

 private:
  using Future = ServeFuture<OptimizedPlan>;
  using FutureState = Future::State;

  struct Job {
    ExprPtr expr;
    std::shared_ptr<const Catalog> catalog;
    /// Router by-products (when canonicalizable): the executing session
    /// probes/fills its cache with exactly this key and reuses the
    /// translation on a miss, so a query is translated once end to end.
    std::optional<PlanCacheKey> key;
    std::optional<RaProgram> translation;
    size_t home_shard = 0;
    int priority = kPriorityNormal;
    uint64_t seq = 0;       ///< enqueue order; FIFO within a priority level
    Deadline deadline;
    Timer queued;           ///< started at enqueue; feeds the age admission
    std::shared_ptr<FutureState> state;  ///< result + callbacks + cancel
  };

  struct Shard {
    mutable std::mutex mu;            ///< guards queue + snapshots below
    std::deque<std::unique_ptr<Job>> queue;
    /// Mirrors queue.size(), updated under mu but readable lock-free: the
    /// submit path samples every shard's depth for router load bias, and
    /// must not take N shard locks per submission to do it. Approximate by
    /// design (bias is a heuristic); admission reads the exact size under
    /// the lock.
    std::atomic<size_t> depth{0};
    size_t executed = 0;
    size_t steals = 0;
    size_t stolen_from = 0;
    size_t expired = 0;
    size_t cancelled = 0;
    size_t rejected = 0;
    SessionStats session_stats;       ///< copied after each job
    PlanCacheStats cache_stats;
    size_t cache_entries = 0;
    /// Worker-busy signal for lone-job stealing and stats: set around the
    /// session call, read lock-free by thieves and Stats().
    std::atomic<bool> busy{false};
    std::atomic<int64_t> busy_since_ns{0};
    /// When a job was last popped from this queue (by owner or thief);
    /// feeds the age-admission stall signal. 0 = never popped.
    std::atomic<int64_t> last_pop_ns{0};
    /// The session itself: touched only by the worker thread that owns
    /// this shard (stolen jobs run on the *thief's* session).
    std::unique_ptr<OptimizerSession> session;
    std::thread worker;
    /// Pool-internal control task (checkpoint capture), run by the owning
    /// worker between jobs — the only way any other thread touches the
    /// session. Guarded by mu; at most one pending (checkpoint_mu_).
    std::function<void()> control;
    /// Warm-restart provenance, written once before the worker spawns.
    ColdStartReason cold_start = ColdStartReason::kDisabled;
    std::string cold_start_detail;
    int64_t snapshot_age_seconds = -1;
    /// Supervision view of the currently running job, registered by RunJob
    /// around Optimize (guarded by mu). The watchdog reads it under mu and
    /// copies the shared state out before acting — the Job itself stays
    /// owned by the worker and is never touched from outside.
    struct RunningJob {
      std::shared_ptr<FutureState> state;
      double hang_seconds = 0;  ///< this job's hang threshold
      int64_t started_ns = 0;
      uint64_t quarantine_hash = 0;
      bool hang_flagged = false;  ///< watchdog fired the cancel token
    };
    std::optional<RunningJob> running;
    /// Set by the worker the moment a job poisons this session, cleared
    /// when the in-place rebuild finishes. While set, peers may steal from
    /// this queue at ANY depth (its owner is busy rebuilding).
    std::atomic<bool> poisoned{false};
    /// Rebuild counters (guarded by mu; causes sum to restarts).
    size_t restarts = 0;
    size_t restart_poisoned = 0;
    size_t restart_bad_alloc = 0;
    size_t restart_hangs = 0;
    /// Shared e-graph node-count mirror for pool-wide memory-pressure
    /// shedding: refreshed by the worker after each job, summed lock-free
    /// at admission.
    std::atomic<size_t> arena_nodes{0};
  };

  /// Admission + enqueue; the returned future is the job's (or an
  /// immediately-rejected one).
  Future Enqueue(std::unique_ptr<Job> job);
  /// Lock-free queue-depth snapshot for router load bias. Returns a
  /// thread-local buffer (valid until this thread's next call).
  const std::vector<size_t>& QueueDepths() const;
  /// Wraps a shared job's future in a member handle (deduped batches):
  /// results forward to it, and Cancel completes only this handle until
  /// every member of the job has voted (see serve_future.h).
  Future AttachMember(const Future& job_future);
  void WorkerLoop(size_t shard_index);
  /// Pops the next job for worker `self`, best (priority, seq) first: own
  /// queue, else the most backlogged stealable other queue. Sets
  /// *retry_soon when a lone job exists that will become stealable once its
  /// home worker has been busy long enough (the caller parks with a timeout
  /// instead of indefinitely).
  std::unique_ptr<Job> NextJob(size_t self, bool* stolen, bool* retry_soon);
  /// Completes a dequeued-but-not-run job (expired / cancelled) and keeps
  /// the drain accounting live.
  void DisposeJob(size_t self, Job& job, Status status);
  void RunJob(size_t self, Job& job, bool stolen);
  void FinishJob();  ///< drain accounting after any completion
  /// Constructor-time restore: loads every shard's snapshot + journals,
  /// repopulates sessions/router, records cold-start provenance. Runs
  /// before any worker spawns (single-threaded window — no locks needed).
  void RestoreShards();
  /// Loads shard `index`'s snapshot + journals into `session` (dims,
  /// graph rebuild, cache replay, router re-pins) — the per-shard half of
  /// RestoreShards, reused by RebuildShard for warm in-place rebuilds.
  CheckpointManager::Restore RestoreIntoSession(size_t index,
                                                OptimizerSession& session);
  /// Why a shard session was rebuilt (one cause per rebuild).
  enum class RestartCause { kPoisoned, kBadAlloc, kHang };
  /// Replaces shard `self`'s poisoned session with a fresh one built from
  /// the shared context, warm-restored from its last checkpoint when
  /// persistence is on. Runs ON THE SHARD'S OWN WORKER THREAD, between
  /// jobs — the only thread allowed to touch the session.
  void RebuildShard(size_t self, RestartCause cause);
  /// The fingerprint-hash identity quarantine tracks for a job: canonical
  /// fingerprint when the router produced a key, structural expression
  /// hash otherwise (still deterministic for exact resubmissions).
  static uint64_t QuarantineHash(const Job& job);
  bool QuarantineRejects(uint64_t hash);  ///< check at admission
  void QuarantineStrike(uint64_t hash);   ///< record a crash/hang
  void WatchdogLoop();
  /// Runs `fn` against shard's session ON ITS OWNER WORKER THREAD, between
  /// jobs, and blocks until it has run. Caller must hold checkpoint_mu_.
  void WithShardSession(size_t shard,
                        const std::function<void(OptimizerSession&)>& fn);
  /// Runs the shard's pending control task, if any (called by its worker).
  void RunControl(size_t self);

  std::shared_ptr<const OptimizerContext> context_;
  PoolConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> next_seq_{0};

  /// Snapshot/journal lifecycle (null when persist.dir is empty).
  std::unique_ptr<CheckpointManager> manager_;
  std::mutex checkpoint_mu_;  ///< serializes Checkpoint() calls

  /// Parking lot: workers sleep here when every queue is empty; every
  /// enqueue bumps the epoch (missed-wakeup-free sleep protocol).
  mutable std::mutex park_mu_;
  std::condition_variable park_cv_;
  uint64_t work_epoch_ = 0;
  bool shutdown_ = false;

  /// Drain accounting.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t submitted_ = 0;
  size_t completed_ = 0;
  size_t dedup_hits_ = 0;
  size_t pregroup_hits_ = 0;

  /// Poison-query quarantine: fingerprint hash -> strike record. Bounded
  /// (FIFO eviction) and TTL'd; see QuarantineConfig.
  struct QuarantineEntry {
    size_t strikes = 0;
    int64_t last_strike_ns = 0;
  };
  mutable std::mutex quarantine_mu_;
  std::unordered_map<uint64_t, QuarantineEntry> quarantine_;
  std::deque<uint64_t> quarantine_order_;  ///< FIFO for capacity eviction
  std::atomic<size_t> quarantined_{0};
  std::atomic<size_t> shed_{0};

  /// Watchdog thread (supervision.enable only).
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace spores
