// Sharded serving pool: N worker threads, each owning one OptimizerSession
// (shard), behind a canonical-form ShardRouter.
//
// Architecture ("When More Cores Hurts" is the cautionary tale — naive
// shared-cache parallelism inverts scaling, so nothing mutable is shared):
//
//   Submit/BatchSubmit (any thread)
//        │  route: canonicalize → hash fingerprint → home shard
//        ▼
//   per-shard MPSC queues ──► worker threads, one per shard
//        │                      │  session.Optimize (shard-local e-graph,
//        │ steal (back)         │  plan cache, cost memo, scheduler)
//        └──────────────────────┘
//
//  * Shard affinity: isomorphic queries always route to the same shard, so
//    its plan cache and warm e-graph serve them without re-saturating, and
//    no two shards ever populate caches for the same key.
//  * Work stealing: an idle worker takes the *oldest* job from the most
//    backlogged other queue, but only from queues holding two or more — a
//    lone queued job is left to its home worker (stealing it would race an
//    idle home worker for no win and skip the cache warming below). Stolen
//    jobs execute on the thief's session with the plan cache bypassed
//    (QueryOptions::use_plan_cache=false) and the thief's warm shared
//    e-graph protected (QueryOptions::preserve_shared_egraph — a foreign
//    catalog saturates on a throwaway graph instead of resetting it):
//    correctness is unaffected, the thief's shard-local state never
//    degrades for its own traffic, and the home shard's cache is simply
//    not warmed by that one job.
//  * Batch dedupe: BatchSubmit groups a batch by canonical form (exact
//    fingerprint + polyterm isomorphism) before enqueueing, so duplicate
//    batch members ride one optimization and share one result.
//
// Every shared artifact (rules, e-matching trie, DimEnv) comes from the
// read-only OptimizerContext; see optimizer_context.h for the audited
// sharing contract. All pool methods are thread-safe.
#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/optimizer/optimizer_session.h"
#include "src/serve/shard_router.h"

namespace spores {

struct PoolConfig {
  size_t num_shards = 8;
  /// Per-shard session config; defaults to the context's base_config.
  std::optional<SessionConfig> session;
  /// Allow idle workers to execute other shards' queued jobs.
  bool enable_work_stealing = true;
};

/// One query for BatchSubmit. The catalog is shared-ptr'd because the job
/// outlives the submit call (workers read it when the job runs).
struct ServeRequest {
  ExprPtr expr;
  std::shared_ptr<const Catalog> catalog;
};

/// Per-shard observability snapshot.
struct ShardStats {
  size_t executed = 0;      ///< jobs run on this shard's session
  size_t steals = 0;        ///< jobs this worker stole from other queues
  size_t stolen_from = 0;   ///< jobs other workers took from this queue
  size_t queue_depth = 0;   ///< jobs waiting at snapshot time
  SessionStats session;     ///< the shard session's cumulative counters
  PlanCacheStats cache;     ///< the shard plan cache's counters
  size_t cache_entries = 0;
};

/// Pool-wide stats: per-shard snapshots plus batch-level counters.
struct PoolStats {
  std::vector<ShardStats> shards;
  size_t submitted = 0;   ///< jobs enqueued (after dedupe)
  size_t dedup_hits = 0;  ///< batch members that rode another member's job
  size_t completed = 0;

  /// Aggregates across shards (sums; hit rate recomputed from sums).
  size_t TotalExecuted() const;
  size_t TotalSteals() const;
  double CacheHitRate() const;  ///< hits / (hits+misses) over all shards
  std::string ToString() const;
};

/// The sharded serving layer. Construction spawns the workers; destruction
/// drains every queue, then joins them (no job is abandoned — every future
/// obtained from Submit/BatchSubmit becomes ready).
class SessionPool {
 public:
  explicit SessionPool(std::shared_ptr<const OptimizerContext> context,
                       PoolConfig config = {});
  ~SessionPool();

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Routes one query to its home shard and enqueues it. Thread-safe.
  std::shared_future<OptimizedPlan> Submit(
      ExprPtr expr, std::shared_ptr<const Catalog> catalog);

  /// Routes a whole batch, deduping by canonical form first: members whose
  /// canonical forms are isomorphic (and whose referenced inputs agree —
  /// the fingerprint pins those) share one optimization. Returns one future
  /// per request, index-aligned; duplicates share the representative's.
  std::vector<std::shared_future<OptimizedPlan>> BatchSubmit(
      const std::vector<ServeRequest>& batch);

  /// Blocks until every job submitted so far has completed.
  void Drain();

  /// Snapshot of per-shard and pool-wide counters. Never blocks on a
  /// running optimization (session stats are snapshotted by the worker
  /// after each job).
  PoolStats Stats() const;

  size_t num_shards() const { return shards_.size(); }
  const ShardRouter& router() const { return router_; }

 private:
  struct Job {
    ExprPtr expr;
    std::shared_ptr<const Catalog> catalog;
    /// Router by-products (when canonicalizable): the executing session
    /// probes/fills its cache with exactly this key and reuses the
    /// translation on a miss, so a query is translated once end to end.
    std::optional<PlanCacheKey> key;
    std::optional<RaProgram> translation;
    size_t home_shard = 0;
    std::promise<OptimizedPlan> promise;
  };

  struct Shard {
    mutable std::mutex mu;            ///< guards queue + snapshots below
    std::deque<std::unique_ptr<Job>> queue;
    size_t executed = 0;
    size_t steals = 0;
    size_t stolen_from = 0;
    SessionStats session_stats;       ///< copied after each job
    PlanCacheStats cache_stats;
    size_t cache_entries = 0;
    /// The session itself: touched only by the worker thread that owns
    /// this shard (stolen jobs run on the *thief's* session).
    std::unique_ptr<OptimizerSession> session;
    std::thread worker;
  };

  std::shared_future<OptimizedPlan> Enqueue(std::unique_ptr<Job> job);
  void WorkerLoop(size_t shard_index);
  /// Pops the next job for worker `self`: own queue front first, else the
  /// oldest job of the most backlogged other queue (work stealing).
  std::unique_ptr<Job> NextJob(size_t self, bool* stolen);
  void RunJob(size_t self, Job& job, bool stolen);

  std::shared_ptr<const OptimizerContext> context_;
  PoolConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Parking lot: workers sleep here when every queue is empty; every
  /// enqueue bumps the epoch (missed-wakeup-free sleep protocol).
  mutable std::mutex park_mu_;
  std::condition_variable park_cv_;
  uint64_t work_epoch_ = 0;
  bool shutdown_ = false;

  /// Drain accounting.
  mutable std::mutex done_mu_;
  std::condition_variable done_cv_;
  size_t submitted_ = 0;
  size_t completed_ = 0;
  size_t dedup_hits_ = 0;
};

}  // namespace spores
