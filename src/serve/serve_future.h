// Lightweight completion futures for the async serving pipeline.
//
// A ServeFuture<T> is the caller's handle to one submitted job: it carries
// the job's result (StatusOr<T> — errors are values here, not exceptions:
// kDeadlineExceeded, kCancelled, and admission's kResourceExhausted are
// expected outcomes under load, and a serving tier must branch on them
// cheaply), completion callbacks, and the cancellation plumbing.
//
//  * then(fn)  — registers a callback invoked exactly once with the final
//    result. Registered-before-completion callbacks run on the completing
//    worker thread, in registration order, after the result is published
//    (get() from inside a callback would not block). Registered after
//    completion, fn runs inline on the registering thread. Callbacks must
//    not block the worker on other pool work finishing later (deadlock by
//    queue ordering); completing cheap bookkeeping or handing off to an
//    executor is the intended use.
//  * Cancel()  — requests cancellation: a job still queued completes with
//    kCancelled at dequeue without running; a job already optimizing is
//    stopped at the runner's / ILP solver's next budget checkpoint via the
//    shared CancelToken, and reports kCancelled even if a plan happened to
//    finish computing in the race — the caller said it no longer wants a
//    result, so it never gets one. Only a job whose result was already
//    *published* (the future was ready) keeps it; Cancel then has no
//    effect. Deduped batch members hold *member handles* onto one shared
//    job: a member's Cancel completes that member's own future kCancelled
//    immediately and casts one vote — the underlying job is only cancelled
//    once EVERY member has voted, so one caller's cancellation never
//    destroys a result other callers still wait for.
//  * get()/Wait()/WaitFor() — blocking consumption for callers that want
//    the PR-4-style synchronous flow.
//
// Copyable; copies share one state. Thread-safe.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/util/cancellation.h"
#include "src/util/status.h"

namespace spores {

template <typename T>
class ServeFuture {
 public:
  using Result = StatusOr<T>;
  using Callback = std::function<void(const Result&)>;

  /// An empty future (valid() == false); Submit/BatchSubmit return live
  /// ones. Calling anything but valid() on an empty future is a bug.
  ServeFuture() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the result is published (get() would not block).
  bool ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value();
  }

  /// Blocks until the result is published and returns it. The reference
  /// stays valid as long as any copy of this future does.
  const Result& get() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->result.has_value(); });
    return *state_->result;
  }

  void Wait() const { get(); }

  /// Waits up to `seconds`; true when the result is ready.
  bool WaitFor(double seconds) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->cv.wait_for(
        lock, std::chrono::duration<double>(seconds),
        [&] { return state_->result.has_value(); });
  }

  /// Registers a completion callback (see the header comment for
  /// threading). Const like Cancel(): it mutates only the shared state.
  void then(Callback fn) const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->result.has_value()) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    // Already complete: run inline. The result is immutable once published.
    fn(*state_->result);
  }

  /// Requests cancellation (idempotent, any thread). Queued jobs complete
  /// kCancelled at dequeue; running jobs stop at the next budget
  /// checkpoint. On a member handle (deduped batch): this handle completes
  /// kCancelled now, and the shared job is cancelled only when every
  /// member has voted. The publish-vs-cancel race is decided under the
  /// state mutex (see Complete), so "cancelled before publication never
  /// delivers a result" is exact, not timing-dependent.
  void Cancel() const {
    State& st = *state_;
    if (st.job) {
      if (st.vote_cast.exchange(true, std::memory_order_relaxed)) return;
      st.Complete(Result(Status::Cancelled("cancelled by caller")));
      // Votes_needed is final before any member future escapes
      // BatchSubmit, so this comparison cannot fire early.
      if (st.job->cancel_votes.fetch_add(1, std::memory_order_acq_rel) + 1 >=
          st.job->cancel_votes_needed.load(std::memory_order_acquire)) {
        st.job->RequestCancelJob();
      }
      return;
    }
    st.RequestCancelJob();
  }

 private:
  friend class SessionPool;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Result> result;
    std::vector<Callback> callbacks;
    /// Checked by the worker at dequeue (cancel-before-run short-circuit).
    std::atomic<bool> cancel_requested{false};
    /// Shared with the optimizer stages (runner / ILP checkpoints). Armed
    /// (allocated) by Make() for job-owning states; member handles leave
    /// it inert — their Cancel votes on the job's token instead.
    CancelToken cancel;
    /// Member-handle plumbing (deduped batches): when `job` is set this
    /// state is one member's view of a shared job; its result arrives by
    /// forwarding, and Cancel votes on `job` instead of firing its token.
    std::shared_ptr<State> job;
    std::atomic<bool> vote_cast{false};
    /// On a shared job's own state: how many member handles must vote
    /// before the job is really cancelled (fixed before futures escape).
    std::atomic<size_t> cancel_votes_needed{0};
    std::atomic<size_t> cancel_votes{0};

    /// Flags cancellation for the dequeue check and fires the token. The
    /// flag is set under mu so the Cancel-vs-publish race has a definite
    /// winner: whichever acquires the mutex first (Complete converts an
    /// ok result to kCancelled when it loses).
    void RequestCancelJob() {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!result.has_value()) {
          cancel_requested.store(true, std::memory_order_relaxed);
        }
      }
      cancel.RequestCancel();
    }

    /// Publishes the result and drains callbacks, exactly once; later
    /// Complete calls are ignored (e.g. Cancel racing normal completion).
    void Complete(Result r) {
      std::vector<Callback> pending;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (result.has_value()) return;
        if (r.ok() && cancel_requested.load(std::memory_order_relaxed)) {
          // Cancel() acquired the mutex before publication: per the
          // documented contract, such a job never delivers a result.
          r = Result(Status::Cancelled("cancelled before completion"));
        }
        result.emplace(std::move(r));
        pending.swap(callbacks);
      }
      cv.notify_all();
      for (Callback& fn : pending) fn(*result);
    }
  };

  /// A job-owning future: its token is live (the optimizer stages poll it).
  static ServeFuture Make() {
    ServeFuture f;
    f.state_ = std::make_shared<State>();
    f.state_->cancel = CancelToken::Cancellable();
    return f;
  }

  /// A member handle onto `job` (deduped batches): no token of its own —
  /// Cancel completes this handle and votes on the job.
  static ServeFuture MakeAttached(std::shared_ptr<State> job) {
    ServeFuture f;
    f.state_ = std::make_shared<State>();
    f.state_->job = std::move(job);
    return f;
  }

  std::shared_ptr<State> state_;
};

}  // namespace spores
