// Rule derivation walk-through (Sec 4.1): feed the left-hand side of a
// SystemML hand-coded rewrite into equality saturation and watch the
// right-hand side appear in the e-graph — the mechanism behind the Fig 14
// experiment. Also shows the completeness check (Theorem 2.3) via canonical
// forms, and prints e-graph growth per iteration.
#include <cstdio>

#include "src/canon/canonical.h"
#include "src/canon/isomorphism.h"
#include "src/egraph/runner.h"
#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/rules/rules_eq.h"
#include "src/rules/rules_lr.h"

int main() {
  using namespace spores;
  Catalog catalog;
  catalog.Register("A", 64, 32);
  catalog.Register("B", 32, 48);

  const char* lhs_text = "sum(A %*% B)";
  const char* rhs_text = "sum(t(colSums(A)) * rowSums(B))";
  std::printf("Deriving SystemML's SumMatrixMult rewrite:\n  %s  ->  %s\n\n",
              lhs_text, rhs_text);

  auto dims = std::make_shared<DimEnv>();
  auto lp = TranslateLaToRa(ParseExpr(lhs_text).value(), catalog, dims);
  auto rp = TranslateLaToRa(ParseExpr(rhs_text).value(), catalog, dims,
                            lp.value().out_row, lp.value().out_col);
  std::printf("LHS in RA: %s\n", ToString(lp.value().ra).c_str());
  std::printf("RHS in RA: %s\n\n", ToString(rp.value().ra).c_str());

  RaContext ctx{&catalog, dims};
  EGraph egraph(std::make_unique<RaAnalysis>(ctx));
  ClassId root = egraph.AddExpr(lp.value().ra);
  egraph.Rebuild();

  std::vector<Rewrite> rules = RaEqualityRules(ctx);
  std::printf("%5s %8s %8s %10s\n", "iter", "nodes", "classes", "derived?");
  bool derived = false;
  for (int iter = 1; iter <= 12 && !derived; ++iter) {
    RunnerConfig cfg;
    cfg.max_iterations = 1;  // single saturation step per report line
    Runner runner(&egraph, rules, cfg);
    runner.Run();
    derived = AlphaRepresents(egraph, egraph.Find(root), rp.value().ra);
    std::printf("%5d %8zu %8zu %10s\n", iter, egraph.NumNodes(),
                egraph.NumClasses(), derived ? "YES" : "no");
  }
  if (!derived) {
    std::printf("\nnot derived within the iteration budget\n");
    return 1;
  }

  // Independent confirmation through canonical-form isomorphism.
  auto equal = EquivalentLa(ParseExpr(lhs_text).value(),
                            ParseExpr(rhs_text).value(), catalog);
  std::printf("\nCanonical-form check (Theorem 2.3): %s\n",
              equal.ok() && equal.value() ? "isomorphic — provably equivalent"
                                          : "NOT equivalent");
  return equal.ok() && equal.value() ? 0 : 1;
}
