// Quickstart: optimize linear-algebra expressions with a SPORES
// OptimizerSession.
//
//   1. Describe the inputs (dimensions + sparsity) in a Catalog.
//   2. Parse the expression in DML/R-like syntax.
//   3. Create ONE session (it compiles the rule set once and owns a plan
//      cache) and call Optimize per query: translate to relational algebra,
//      equality-saturate with the complete rule set R_EQ, extract the
//      cheapest plan, translate back to linear algebra.
//   4. Execute both plans and compare; resubmit the query to see the
//      canonical-form plan cache skip saturation entirely.
//
// The example is the paper's running one: sum((X - U %*% t(V))^2) with a
// sparse X — the expression SystemML's syntactic rules only handle through a
// special-cased operator, and break on small variations.
#include <cstdio>

#include "src/ir/parser.h"
#include "src/ir/printer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/runtime/executor.h"
#include "src/util/timer.h"

int main() {
  using namespace spores;

  // ---- 1. Inputs: sparse X (1%), skinny dense factors U, V. ----
  Rng rng(2020);
  Bindings inputs;
  inputs.Bind("X", Matrix::RandomSparse(2000, 1000, 0.01, rng));
  inputs.Bind("U", Matrix::RandomDense(2000, 10, rng));
  inputs.Bind("V", Matrix::RandomDense(1000, 10, rng));
  Catalog catalog = inputs.ToCatalog();

  // ---- 2. Parse. ----
  auto parsed = ParseExpr("sum((X - U %*% t(V))^2)");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  ExprPtr program = parsed.value();
  std::printf("input:     %s\n", ToString(program).c_str());

  // ---- 3. Optimize through a session. ----
  OptimizerSession session;
  OptimizedPlan result = session.Optimize(program, catalog);
  if (result.used_fallback) {
    std::printf("NOTE: a stage failed (%s); plan is the fused input and "
                "will not be cached.\n", result.fallback_reason.c_str());
  }
  std::printf("optimized: %s\n", ToString(result.plan).c_str());
  std::printf("cost:      %.3g -> %.3g (model nnz, %s)\n",
              result.original_cost, result.plan_cost,
              result.optimal ? "ILP-optimal" : "not proven optimal");
  std::printf("compile:   translate %.1fms, saturate %.1fms (%s), "
              "extract %.1fms\n",
              result.timings.translate_seconds * 1e3,
              result.timings.saturate_seconds * 1e3,
              result.saturation.ToString().c_str(),
              result.timings.extract_seconds * 1e3);

  // ---- 4. Execute both and compare. ----
  Timer t;
  auto naive = Execute(program, inputs);
  double t_naive = t.Seconds();
  t.Reset();
  auto fast = Execute(result.plan, inputs);
  double t_fast = t.Seconds();
  if (!naive.ok() || !fast.ok()) return 1;
  std::printf("naive:     %.6f  (%.1f ms)\n", naive.value().AsScalar(),
              t_naive * 1e3);
  std::printf("optimized: %.6f  (%.1f ms)  -> %.1fx faster\n",
              fast.value().AsScalar(), t_fast * 1e3, t_naive / t_fast);

  // ---- 5. Resubmit: the canonical-form plan cache skips saturation. ----
  t.Reset();
  OptimizedPlan warm = session.Optimize(program, catalog);
  std::printf("\nresubmitted: cache %s in %.2f ms (cold compile was "
              "%.2f ms)\n", warm.cache_hit ? "HIT" : "miss",
              t.Millis(), result.timings.TotalSeconds() * 1e3);
  std::printf("session:   %s\n", session.stats().ToString().c_str());
  return 0;
}
