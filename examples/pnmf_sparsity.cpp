// PNMF objective across sparsities (Sec 4.2's PNMF): demonstrates two
// things at once —
//  * cost-based extraction picks different plans as the input density
//    changes (the "dependency on input properties" heuristics struggle
//    with), and
//  * the common-subexpression interaction: W %*% H is shared by both terms
//    of the objective, which makes SystemML's guarded rewrite decline while
//    SPORES' global cost model optimizes both uses away.
#include <cstdio>

#include "src/ir/printer.h"
#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/spores_optimizer.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

int main() {
  using namespace spores;
  Program pnmf = PnmfProgram();
  std::printf("PNMF objective (W %%*%% H shared by both sums):\n  %s\n\n",
              ToString(pnmf.expr).c_str());

  std::printf("%-10s %12s %12s %10s\n", "sparsity", "heuristic[ms]",
              "SPORES[ms]", "speedup");
  std::printf("%.50s\n", std::string(50, '-').c_str());
  for (double sparsity : {0.001, 0.01, 0.1, 0.5}) {
    WorkloadData data = MakeFactorizationData(2000, 1000, 10, sparsity, 3);
    HeuristicOptimizer heuristic(OptLevel::kOpt2);
    SporesOptimizer spores_opt;
    ExprPtr plan_h = heuristic.Optimize(pnmf.expr, data.catalog);
    ExprPtr plan_s = spores_opt.Optimize(pnmf.expr, data.catalog);

    auto time_plan = [&](const ExprPtr& plan) {
      Timer t;
      auto r = Execute(plan, data.inputs);
      return r.ok() ? t.Millis() : -1.0;
    };
    double ms_h = time_plan(plan_h);
    double ms_s = time_plan(plan_s);
    std::printf("%-10g %12.2f %12.2f %9.1fx\n", sparsity, ms_h, ms_s,
                ms_h / ms_s);
  }

  WorkloadData data = MakeFactorizationData(2000, 1000, 10, 0.01, 3);
  SporesOptimizer spores_opt;
  std::printf("\nSPORES plan at sparsity 0.01:\n  %s\n",
              ToString(spores_opt.Optimize(pnmf.expr, data.catalog)).c_str());
  std::printf("Note how sum(W %%*%% H) became a colSums/rowSums product and "
              "the X-weighted term\nbecame a sparse sum-product — no dense "
              "W %%*%% H anywhere.\n");
  return 0;
}
