// PNMF objective across sparsities (Sec 4.2's PNMF): demonstrates two
// things at once —
//  * cost-based extraction picks different plans as the input density
//    changes (the "dependency on input properties" heuristics struggle
//    with), and
//  * the common-subexpression interaction: W %*% H is shared by both terms
//    of the objective, which makes SystemML's guarded rewrite decline while
//    SPORES' global cost model optimizes both uses away.
#include <cstdio>

#include "src/ir/printer.h"
#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

int main() {
  using namespace spores;
  Program pnmf = PnmfProgram();
  std::printf("PNMF objective (W %%*%% H shared by both sums):\n  %s\n\n",
              ToString(pnmf.expr).c_str());

  std::printf("%-10s %12s %12s %10s\n", "sparsity", "heuristic[ms]",
              "SPORES[ms]", "speedup");
  std::printf("%.50s\n", std::string(50, '-').c_str());
  // One session across all sparsities: the cache key includes sparsity, so
  // each density compiles its own plan; the rule set is compiled just once.
  HeuristicOptimizer heuristic(OptLevel::kOpt2);
  OptimizerSession session;
  for (double sparsity : {0.001, 0.01, 0.1, 0.5}) {
    WorkloadData data = MakeFactorizationData(2000, 1000, 10, sparsity, 3);
    ExprPtr plan_h = heuristic.Optimize(pnmf.expr, data.catalog);
    ExprPtr plan_s = session.Optimize(pnmf.expr, data.catalog).plan;

    auto time_plan = [&](const ExprPtr& plan) {
      Timer t;
      auto r = Execute(plan, data.inputs);
      return r.ok() ? t.Millis() : -1.0;
    };
    double ms_h = time_plan(plan_h);
    double ms_s = time_plan(plan_s);
    std::printf("%-10g %12.2f %12.2f %9.1fx\n", sparsity, ms_h, ms_s,
                ms_h / ms_s);
  }

  WorkloadData data = MakeFactorizationData(2000, 1000, 10, 0.01, 3);
  // Same session, repeated catalog: this query is a plan-cache hit.
  OptimizedPlan replay = session.Optimize(pnmf.expr, data.catalog);
  std::printf("\nSPORES plan at sparsity 0.01 (cache %s):\n  %s\n",
              replay.cache_hit ? "hit" : "miss",
              ToString(replay.plan).c_str());
  std::printf("Note how sum(W %%*%% H) became a colSums/rowSums product and "
              "the X-weighted term\nbecame a sparse sum-product — no dense "
              "W %%*%% H anywhere.\n");
  return 0;
}
