// Alternating-least-squares-style factorization driver (Sec 4.2's ALS):
// runs a few gradient steps where each iteration's hot expression,
// (U %*% t(V) - X) %*% V, goes through the SPORES optimizer. The optimizer
// distributes the product so the sparse X is joined directly with V and the
// dense residual U V^T is never materialized — the paper's "up to 5X".
#include <cstdio>

#include "src/ir/printer.h"
#include "src/optimizer/heuristic_optimizer.h"
#include "src/optimizer/optimizer_session.h"
#include "src/runtime/fused.h"
#include "src/runtime/kernels.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"
#include "src/workloads/programs.h"

int main() {
  using namespace spores;

  const int64_t rows = 2000, cols = 1000, rank = 10;
  WorkloadData data = MakeFactorizationData(rows, cols, rank, 0.01, 99);
  Program als = AlsProgram();
  std::printf("ALS inner-loop expression: %s\n", ToString(als.expr).c_str());

  // Compile once with each optimizer (SystemML-style vs SPORES).
  HeuristicOptimizer heuristic(OptLevel::kOpt2);
  OptimizerSession session;
  ExprPtr plan_heuristic = heuristic.Optimize(als.expr, data.catalog);
  ExprPtr plan_spores = session.Optimize(als.expr, data.catalog).plan;
  std::printf("heuristic plan: %s\n", ToString(plan_heuristic).c_str());
  std::printf("SPORES plan:    %s\n\n", ToString(plan_spores).c_str());

  // A few "descent" iterations: U <- U - eta * gradient. The step size is
  // conservative; the example demonstrates per-iteration cost, not tuning.
  const double eta = 2e-4;
  const int iterations = 5;
  for (auto [name, plan] : {std::pair<const char*, ExprPtr>{
                                "heuristic", plan_heuristic},
                            {"SPORES", plan_spores}}) {
    Bindings state = data.inputs;  // copy: U evolves per-optimizer
    Timer t;
    double loss = 0;
    for (int it = 0; it < iterations; ++it) {
      auto grad = Execute(plan, state);
      if (!grad.ok()) {
        std::fprintf(stderr, "%s\n", grad.status().ToString().c_str());
        return 1;
      }
      const Matrix* u = state.Find(Symbol::Intern("U"));
      state.Bind("U", Sub(*u, Scale(grad.value(), eta)));
      // Track the residual norm cheaply via the fused wsloss.
      loss = WsLoss(*state.Find(Symbol::Intern("X")),
                    *state.Find(Symbol::Intern("U")),
                    *state.Find(Symbol::Intern("V")));
    }
    std::printf("%-10s %d iterations in %7.1f ms, final loss %.4f\n", name,
                iterations, t.Millis(), loss);
  }
  std::printf("\nBoth optimizers converge to the same loss; SPORES gets "
              "there much faster\nbecause its plan never materializes the "
              "dense %ldx%ld residual.\n", rows, cols);
  return 0;
}
