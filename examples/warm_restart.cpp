// Warm restarts: persist a serving pool's optimized plans across process
// restarts with the PR 6 persistence tier.
//
//   1. Start a SessionPool with PoolConfig::persist.dir set. Every plan the
//      pool optimizes is WAL-journaled as it is cached; Checkpoint() (and,
//      by default, shutdown) writes full versioned snapshots — plan caches
//      plus each shard's saturated e-graph.
//   2. "Restart": construct a second pool on the same directory. It
//      validates the snapshot headers (format version, rule-set hash,
//      cost-model hash, shard count), rebuilds the caches and e-graphs,
//      and re-pins every restored class in the shard router.
//   3. The first submission of a previously-seen query after the restart is
//      a plan-cache hit: no translation, no saturation, no extraction.
//
// A real deployment restarts into a new process; here both "runs" share one
// process, but the wire format is process-independent (symbols travel as
// strings, sorted invariants are re-established on decode), which the
// persistence tests exercise directly.
#include <cstdio>

#include "src/ir/parser.h"
#include "src/serve/session_pool.h"
#include "src/util/timer.h"
#include "src/workloads/generators.h"

int main() {
  using namespace spores;

  const std::string dir = "/tmp/spores_warm_restart_example";
  std::remove((dir + "/shard-0.snap").c_str());
  std::remove((dir + "/shard-0.journal").c_str());
  std::remove((dir + "/shard-0.journal.1").c_str());

  // The paper's running example over a sparse X.
  auto catalog = std::make_shared<Catalog>(
      MakeFactorizationData(2000, 1000, 10, 0.01, 2020).catalog);
  auto parsed = ParseExpr("sum((X - U %*% t(V))^2)");
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  ExprPtr query = parsed.value();

  PoolConfig cfg;
  cfg.num_shards = 1;  // one shard keeps the output readable
  cfg.persist.dir = dir;

  // ---- Run 1: optimize cold, checkpoint on shutdown. ----
  double cold_ms = 0.0;
  double cold_cost = 0.0;
  {
    SessionPool pool(std::make_shared<const OptimizerContext>(), cfg);
    Timer t;
    auto plan = pool.Submit(query, catalog).get();
    cold_ms = t.Millis();
    if (!plan.ok()) {
      std::fprintf(stderr, "optimize failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    cold_cost = plan.value().plan_cost;
    std::printf("run 1 (cold): optimized in %.2f ms, cost %.3g\n", cold_ms,
                cold_cost);
    pool.Drain();
  }  // ~SessionPool checkpoints: snapshot + journals under `dir`

  // ---- Run 2: same directory, fresh pool — the "restarted process". ----
  {
    SessionPool pool(std::make_shared<const OptimizerContext>(), cfg);
    PoolStats stats = pool.Stats();
    const ShardStats& shard = stats.shards[0];
    std::printf("run 2 startup: %s (%zu plans, %zu e-classes restored, "
                "snapshot %llds old)\n",
                ColdStartReasonName(shard.cold_start),
                shard.session.restored_plans, shard.session.restored_classes,
                static_cast<long long>(shard.snapshot_age_seconds));

    Timer t;
    auto plan = pool.Submit(query, catalog).get();
    double warm_ms = t.Millis();
    if (!plan.ok()) return 1;
    std::printf("run 2 (restored): cache %s in %.2f ms, cost %.3g "
                "(cold was %.2f ms) -> %.0fx faster first query\n",
                plan.value().cache_hit ? "HIT" : "miss", warm_ms,
                plan.value().plan_cost, cold_ms,
                warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    if (!plan.value().cache_hit || plan.value().plan_cost != cold_cost) {
      std::fprintf(stderr, "FAIL: restore did not reproduce the cold run\n");
      return 1;
    }
    pool.Drain();
  }
  std::printf("\ninspect the files with: snapshot_inspect %s/shard-0.snap\n",
              dir.c_str());
  return 0;
}
